//! The initial bit-pattern encoding (§3.2).
//!
//! For the derived bit position: set `v[bit] = wm[i]` and force the guard
//! bits `v[bit−1] = v[bit+1] = 0` on *every* item of the characteristic
//! subset. The guards make the pattern survive averaging within the
//! subset: the low bits (< bit−1) of the items average to something still
//! below `2^(bit−1)`, so no carry can reach the payload bit.
//!
//! For that argument to hold across items, all magnitude bits *above*
//! `bit+1` must be identical within the subset. Items within δ of the
//! extreme agree on the top β bits but not necessarily further down, so
//! this encoder also *harmonizes* the upper bits of every subset item to
//! the extreme's (an alteration bounded by δ — the items were within δ of
//! the extreme already). The paper asserts summarization-survival of the
//! in-subset pattern ("it is easy to show"); harmonization is the
//! implementation detail that makes the assertion exact.
//!
//! The subset must be sign-uniform (a subset straddling zero cannot keep a
//! common magnitude prefix); mixed subsets are skipped.

use super::{EmbedResult, EncoderScratch, SubsetEncoder, Vote};
use crate::labeling::Label;
use crate::scheme::Scheme;

/// §3.2's encoder. Constant-time per item — the fast option of §6.4.
#[derive(Debug, Clone, Copy, Default)]
pub struct InitialEncoder;

impl InitialEncoder {
    fn sign_uniform(raws: &[i64]) -> bool {
        let any_neg = raws.iter().any(|&r| r < 0);
        let any_pos = raws.iter().any(|&r| r > 0);
        !(any_neg && any_pos)
    }
}

impl InitialEncoder {
    /// Shared embedding body; `pos` is the (possibly memoized) bit
    /// position for `label`, `raws` the quantized subset.
    fn embed_at(
        scheme: &Scheme,
        raws: &[i64],
        extreme_offset: usize,
        pos: u32,
        bit: bool,
    ) -> Option<EmbedResult> {
        let c = &scheme.codec;
        if !Self::sign_uniform(raws) {
            return None;
        }
        // Encode the extreme first; it becomes the upper-bit template.
        let enc = |raw: i64| -> i64 {
            let r = c.set_bit(raw, pos - 1, false);
            let r = c.set_bit(r, pos, bit);
            c.set_bit(r, pos + 1, false)
        };
        let template = enc(raws[extreme_offset]);
        let out: Vec<f64> = raws
            .iter()
            .enumerate()
            .map(|(k, &raw)| {
                let encoded = enc(raw);
                let harmonized = if k == extreme_offset {
                    template
                } else {
                    c.copy_upper_bits(encoded, template, pos + 1)
                };
                c.dequantize(harmonized)
            })
            .collect();
        Some(EmbedResult {
            values: out,
            iterations: 1,
        })
    }
}

impl SubsetEncoder for InitialEncoder {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        let mut scratch = EncoderScratch::ephemeral();
        self.embed_with(scheme, &mut scratch, values, extreme_offset, label, bit)
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], label: &Label) -> Vote {
        let mut scratch = EncoderScratch::ephemeral();
        self.detect_with(scheme, &mut scratch, values, label)
    }

    fn embed_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        if values.is_empty() || extreme_offset >= values.len() {
            return None;
        }
        let c = &scheme.codec;
        scratch.raws.clear();
        scratch.raws.extend(values.iter().map(|&v| c.quantize(v)));
        let pos = scratch.bit_position(scheme, label);
        Self::embed_at(scheme, &scratch.raws, extreme_offset, pos, bit)
    }

    fn detect_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        label: &Label,
    ) -> Vote {
        let c = &scheme.codec;
        let pos = scratch.bit_position(scheme, label);
        let mut vote = Vote::empty();
        for &v in values {
            let raw = c.quantize(v);
            vote.add(c.get_bit(raw, pos));
        }
        vote
    }

    fn name(&self) -> &'static str {
        "initial"
    }
}

/// The *pre-§4.1* variant of the initial encoder: the bit position is
/// derived from `H(msb(ε, β), k1)` — i.e. from the extreme's own value —
/// exactly as §3.2 first proposes. This is the configuration vulnerable
/// to Mallory's bucket-counting correlation attack, kept for the §4.1
/// ablation experiment. Do **not** use it for actual rights protection.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnlabeledInitialEncoder;

impl UnlabeledInitialEncoder {
    /// Position derived from the subset's own values (max-magnitude item,
    /// which shares msb(·, β) with every subset member since δ < 2^−β).
    fn position(scheme: &Scheme, values: &[f64]) -> u32 {
        use wms_crypto::keyed::encode::{self, DOM_BITPOS};
        let c = &scheme.codec;
        let anchor = values
            .iter()
            .copied()
            .max_by(|a, b| a.abs().total_cmp(&b.abs()))
            .unwrap_or(0.0);
        let msb = c.msb_abs(c.quantize(anchor), scheme.params.select_msb_bits);
        let alpha = scheme.params.embed_bits;
        let msg = encode::message(DOM_BITPOS, &[&encode::u64_bytes(msb)]);
        1 + scheme.hash.hash_mod(&msg, (alpha - 2) as u64) as u32
    }

    fn encode_at(
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        pos: u32,
        bit: bool,
    ) -> Option<Vec<f64>> {
        let c = &scheme.codec;
        let raws: Vec<i64> = values.iter().map(|&v| c.quantize(v)).collect();
        if !InitialEncoder::sign_uniform(&raws) {
            return None;
        }
        let enc = |raw: i64| -> i64 {
            let r = c.set_bit(raw, pos - 1, false);
            let r = c.set_bit(r, pos, bit);
            c.set_bit(r, pos + 1, false)
        };
        let template = enc(raws[extreme_offset]);
        Some(
            raws.iter()
                .enumerate()
                .map(|(k, &raw)| {
                    let encoded = enc(raw);
                    let h = if k == extreme_offset {
                        template
                    } else {
                        c.copy_upper_bits(encoded, template, pos + 1)
                    };
                    c.dequantize(h)
                })
                .collect(),
        )
    }
}

impl SubsetEncoder for UnlabeledInitialEncoder {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        _label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        if values.is_empty() || extreme_offset >= values.len() {
            return None;
        }
        let pos = Self::position(scheme, values);
        let out = Self::encode_at(scheme, values, extreme_offset, pos, bit)?;
        Some(EmbedResult {
            values: out,
            iterations: 1,
        })
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], _label: &Label) -> Vote {
        let mut vote = Vote::empty();
        if values.is_empty() {
            return vote;
        }
        let pos = Self::position(scheme, values);
        let c = &scheme.codec;
        for &v in values {
            vote.add(c.get_bit(c.quantize(v), pos));
        }
        vote
    }

    fn name(&self) -> &'static str {
        "initial-unlabeled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WmParams;
    use wms_crypto::{Key, KeyedHash};

    fn scheme() -> Scheme {
        Scheme::new(WmParams::default(), KeyedHash::md5(Key::from_u64(1))).unwrap()
    }

    fn label() -> Label {
        Label::from_parts(0b1_0110_1001, 9)
    }

    /// A plausible characteristic subset around a maximum at 0.31.
    fn subset() -> Vec<f64> {
        vec![0.3021, 0.3077, 0.31, 0.3088, 0.3046, 0.3012]
    }

    #[test]
    fn embed_then_detect_unanimous() {
        let s = scheme();
        let e = InitialEncoder;
        for bit in [true, false] {
            let r = e.embed(&s, &subset(), 2, &label(), bit).unwrap();
            assert_eq!(r.iterations, 1);
            let v = e.detect(&s, &r.values, &label());
            assert_eq!(v.verdict(), Some(bit));
            assert_eq!(v.total(), 6);
            let consistent = if bit { v.true_votes } else { v.false_votes };
            assert_eq!(consistent, 6, "all items must carry the bit");
        }
    }

    #[test]
    fn alteration_is_bounded_by_radius_scale() {
        let s = scheme();
        let vals = subset();
        let r = InitialEncoder.embed(&s, &vals, 2, &label(), true).unwrap();
        for (a, b) in r.values.iter().zip(&vals) {
            // Harmonization moves items toward the extreme: bounded by the
            // max in-subset distance (~0.01) plus the α-band quantum.
            assert!((a - b).abs() < 0.011, "alteration {}", (a - b).abs());
        }
    }

    #[test]
    fn survives_in_subset_summarization() {
        // Average any contiguous chunk of encoded items: bit still reads.
        let s = scheme();
        let e = InitialEncoder;
        for bit in [true, false] {
            let r = e.embed(&s, &subset(), 2, &label(), bit).unwrap();
            for win in 2..=r.values.len() {
                for start in 0..=(r.values.len() - win) {
                    let chunk = &r.values[start..start + win];
                    let mean = chunk.iter().sum::<f64>() / win as f64;
                    let v = e.detect(&s, &[mean], &label());
                    assert_eq!(v.verdict(), Some(bit), "avg of {win}@{start} lost the bit");
                }
            }
        }
    }

    #[test]
    fn survives_sampling_any_single_item() {
        let s = scheme();
        let r = InitialEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        for &v in &r.values {
            assert_eq!(
                InitialEncoder.detect(&s, &[v], &label()).verdict(),
                Some(true)
            );
        }
    }

    #[test]
    fn negative_subset_works() {
        let s = scheme();
        let vals: Vec<f64> = subset().iter().map(|v| -v).collect();
        let r = InitialEncoder.embed(&s, &vals, 2, &label(), true).unwrap();
        assert!(r.values.iter().all(|&v| v < 0.0), "sign preserved");
        let v = InitialEncoder.detect(&s, &r.values, &label());
        assert_eq!(v.verdict(), Some(true));
    }

    #[test]
    fn mixed_sign_subset_rejected() {
        let s = scheme();
        let vals = vec![0.001, -0.001, 0.002];
        assert!(InitialEncoder.embed(&s, &vals, 1, &label(), true).is_none());
    }

    #[test]
    fn empty_or_bad_offset_rejected() {
        let s = scheme();
        assert!(InitialEncoder.embed(&s, &[], 0, &label(), true).is_none());
        assert!(InitialEncoder
            .embed(&s, &[0.1], 3, &label(), true)
            .is_none());
    }

    #[test]
    fn different_labels_use_different_positions() {
        // The §4.1 point: position comes from the label.
        let s = scheme();
        let l1 = Label::from_parts(0b1_0000_0001, 9);
        let mut seen = std::collections::HashSet::new();
        seen.insert(s.bit_position(&l1));
        for bits in 0..64u64 {
            let l = Label::from_parts((1 << 8) | bits, 9);
            seen.insert(s.bit_position(&l));
        }
        assert!(seen.len() > 4, "positions should spread: {seen:?}");
    }

    #[test]
    fn unlabeled_variant_roundtrips_without_label() {
        let s = scheme();
        let e = UnlabeledInitialEncoder;
        for bit in [true, false] {
            let r = e.embed(&s, &subset(), 2, &label(), bit).unwrap();
            // Any label works at detection — the position ignores it.
            let other = Label::from_parts(0b11, 2);
            let v = e.detect(&s, &r.values, &other);
            assert_eq!(v.verdict(), Some(bit));
        }
    }

    #[test]
    fn unlabeled_variant_exposes_correlation() {
        // The §4.1 vulnerability in miniature: all same-msb subsets embed
        // at the *same* position, unlike the labeled encoder.
        let s = scheme();
        let p1 = UnlabeledInitialEncoder::position(&s, &subset());
        let shifted: Vec<f64> = subset().iter().map(|v| v + 0.002).collect();
        let p2 = UnlabeledInitialEncoder::position(&s, &shifted);
        assert_eq!(p1, p2, "same msb bucket → same position");
    }

    #[test]
    fn unwatermarked_data_votes_split() {
        // Detection over random subsets ≈ fair coin per item.
        let s = scheme();
        let mut rng = wms_math::DetRng::seed_from_u64(5);
        let mut v = Vote::empty();
        for _ in 0..2000 {
            let x = rng.uniform(-0.49, 0.49);
            v.merge(InitialEncoder.detect(&s, &[x], &label()));
        }
        let frac = v.true_votes as f64 / v.total() as f64;
        assert!((0.4..0.6).contains(&frac), "true fraction {frac}");
    }
}
