//! # wms-core
//!
//! Resilient rights protection for sensor streams — a from-scratch Rust
//! implementation of Sion, Atallah & Prabhakar, *Resilient Rights
//! Protection for Sensor Streams*, VLDB 2004.
//!
//! The scheme hides an indelible watermark in a numeric data stream while
//! it is being produced, in a single pass over a bounded window, such that
//! the mark survives the transformations a stream consumer can plausibly
//! apply: uniform/fixed sampling, summarization (averaging), segmentation,
//! linear rescaling and random alterations.
//!
//! ## Anatomy
//!
//! * [`extremes`] — bit carriers are the stream's *major extremes*: local
//!   optima whose characteristic subsets (runs of items within δ of the
//!   extreme) are fat enough to survive degree-ν transforms;
//! * [`labeling`] — extremes are named by comparing their neighbours'
//!   magnitudes, giving attack-survivable, value-decorrelated labels;
//! * [`scheme`] — the keyed-hash selection criterion and bit-position /
//!   convention derivations shared by embedder and detector;
//! * [`encoding`] — three one-bit subset encodings (initial bit-pattern,
//!   multi-hash, quadratic-residue);
//! * [`embedder`] / [`detector`] — single-pass windowed embedding and
//!   majority-voting detection;
//! * [`transform_estimate`] — recovering the transform degree χ from
//!   characteristic-subset shrinkage (§4.2);
//! * [`quality`] — §4.4's constraint + undo-log machinery;
//! * [`analysis`] — §5's closed-form court-confidence and attack bounds.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use wms_core::encoding::multihash::MultiHashEncoder;
//! use wms_core::{Detector, Embedder, Scheme, TransformHint, Watermark, WmParams};
//! use wms_crypto::{Key, KeyedHash};
//! use wms_stream::samples_from_values;
//!
//! // A smooth normalized sensor stream.
//! let values: Vec<f64> = (0..3000)
//!     .map(|i| 0.35 * (i as f64 * 0.1).sin())
//!     .collect();
//! let stream = samples_from_values(&values);
//!
//! let params = WmParams { min_active: Some(4), ..WmParams::default() };
//! let scheme = Scheme::new(params, KeyedHash::md5(Key::from_u64(0xC0FFEE))).unwrap();
//!
//! let (marked, stats) = Embedder::embed_stream(
//!     scheme.clone(),
//!     Arc::new(MultiHashEncoder),
//!     Watermark::single(true),
//!     &stream,
//! )
//! .unwrap();
//! assert!(stats.embedded > 0);
//!
//! let report = Detector::detect_stream(
//!     scheme,
//!     Arc::new(MultiHashEncoder),
//!     1,
//!     &marked,
//!     TransformHint::None,
//! )
//! .unwrap();
//! assert!(report.bias() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod codetable;
pub mod detector;
pub mod embedder;
pub mod encoding;
pub mod extremes;
pub mod fixedpoint;
pub mod labeling;
pub mod multipass;
pub mod params;
pub mod quality;
pub mod scheme;
pub mod session;
pub mod transform_estimate;
pub mod watermark;

pub use checkpoint::CheckpointError;
pub use codetable::CodeTable;
pub use detector::{BitBuckets, DetectionReport, Detector, TransformHint};
pub use embedder::{EmbedStats, Embedder};
pub use encoding::{EmbedResult, EncoderScratch, SubsetEncoder, Vote};
pub use fixedpoint::FixedPointCodec;
pub use labeling::{Label, Labeler};
pub use multipass::{detect_multipass, MultiPassReport};
pub use params::WmParams;
pub use scheme::Scheme;
pub use session::{DetectConfig, DetectSession, EmbedConfig, EmbedSession};
pub use transform_estimate::StreamFingerprint;
pub use watermark::{RecoveredWatermark, Watermark};
