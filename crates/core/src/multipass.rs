//! Offline multi-pass detection (one of the §4 improvement directions:
//! "handling ability of offline multi-pass detection").
//!
//! Streaming detection must commit to one transform degree χ up front.
//! When the suspect data sits in a file, nothing stops the rights holder
//! from running several passes — one per candidate χ — and keeping the
//! most incriminating result. Because detection with a *wrong* χ produces
//! noise-level bias (≈0) rather than spurious positives, scanning
//! candidates is sound as long as the final false-positive probability is
//! Bonferroni-corrected for the number of passes, which
//! [`MultiPassReport::false_positive_probability`] does.

use crate::detector::{DetectionReport, Detector, TransformHint};
use crate::encoding::SubsetEncoder;
use crate::scheme::Scheme;
use crate::transform_estimate::StreamFingerprint;
use std::sync::Arc;
use wms_stream::Sample;

/// Result of a multi-pass scan.
#[derive(Debug, Clone)]
pub struct MultiPassReport {
    /// Every pass, in candidate order: (χ candidate, its report).
    pub passes: Vec<(f64, DetectionReport)>,
    /// Index into `passes` of the strongest |bias| for bit 0.
    pub best: usize,
}

impl MultiPassReport {
    /// The winning χ candidate.
    pub fn best_chi(&self) -> f64 {
        self.passes[self.best].0
    }

    /// The winning pass's report.
    pub fn best_report(&self) -> &DetectionReport {
        &self.passes[self.best].1
    }

    /// Bit-0 bias of the winning pass.
    pub fn bias(&self) -> i64 {
        self.best_report().bias()
    }

    /// Bonferroni-corrected false-positive probability: the per-pass
    /// `2^(−bias)` multiplied by the number of passes (capped at 1).
    pub fn false_positive_probability(&self) -> f64 {
        (self.best_report().false_positive_probability() * self.passes.len() as f64).min(1.0)
    }

    /// Court-time confidence after the multiple-testing correction.
    pub fn confidence(&self) -> f64 {
        1.0 - self.false_positive_probability()
    }
}

/// Runs one detection pass per candidate transform degree and selects the
/// strongest. Candidates must be ≥ 1; duplicates are deduplicated.
pub fn detect_multipass(
    scheme: &Scheme,
    encoder: &Arc<dyn SubsetEncoder>,
    wm_len: usize,
    samples: &[Sample],
    candidates: &[f64],
) -> Result<MultiPassReport, String> {
    if candidates.is_empty() {
        return Err("multi-pass detection needs at least one candidate χ".into());
    }
    let mut uniq: Vec<f64> = Vec::new();
    for &c in candidates {
        if c.is_nan() || c < 1.0 {
            return Err(format!("candidate transform degree must be >= 1, got {c}"));
        }
        if !uniq.iter().any(|&u| (u - c).abs() < 1e-9) {
            uniq.push(c);
        }
    }
    let mut passes = Vec::with_capacity(uniq.len());
    for &chi in &uniq {
        let report = Detector::detect_stream(
            scheme.clone(),
            Arc::clone(encoder),
            wm_len,
            samples,
            TransformHint::Known(chi),
        )?;
        passes.push((chi, report));
    }
    // First maximum wins: on ties, prefer the smallest candidate χ (the
    // most conservative reading of the evidence).
    let mut best = 0usize;
    for (i, (_, r)) in passes.iter().enumerate() {
        if r.bias().abs() > passes[best].1.bias().abs() {
            best = i;
        }
    }
    Ok(MultiPassReport { passes, best })
}

/// Convenience: candidate set covering the plausible degrees up to
/// `max_degree`, optionally seeded with a §4.2 fingerprint estimate.
pub fn default_candidates(max_degree: usize, fingerprint_estimate: Option<f64>) -> Vec<f64> {
    let mut c: Vec<f64> = (1..=max_degree.max(1)).map(|k| k as f64).collect();
    if let Some(e) = fingerprint_estimate {
        if e >= 1.0 {
            c.push(e.round().max(1.0));
            c.push(e.max(1.0));
        }
    }
    c
}

/// Fingerprint-seeded candidate list (ties §4.2 into the multi-pass scan).
pub fn candidates_from_fingerprint(
    fp: &StreamFingerprint,
    observed: &[f64],
    max_degree: usize,
) -> Vec<f64> {
    let est = crate::transform_estimate::estimate_degree(fp, observed);
    default_candidates(max_degree, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::multihash::MultiHashEncoder;
    use crate::params::WmParams;
    use crate::watermark::Watermark;
    use crate::Embedder;
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn params() -> WmParams {
        WmParams {
            window: 512,
            degree: 6,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            label_msb_bits: 2,
            min_active: Some(8),
            ..WmParams::default()
        }
    }

    fn scheme() -> Scheme {
        Scheme::new(params(), KeyedHash::md5(Key::from_u64(31))).unwrap()
    }

    /// Amplitude-modulated oscillator (msb-diverse extremes).
    fn stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                let amp = 0.10 + 0.35 * (0.5 + 0.5 * (t * core::f64::consts::TAU / 4096.0).sin());
                amp * (t * core::f64::consts::TAU / 80.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn finds_the_true_transform_degree() {
        let s = scheme();
        let enc: Arc<dyn SubsetEncoder> = Arc::new(MultiHashEncoder);
        let (marked, stats) = Embedder::embed_stream(
            s.clone(),
            Arc::clone(&enc),
            Watermark::single(true),
            &stream(12_000),
        )
        .unwrap();
        assert!(stats.embedded > 20, "{stats:?}");
        let attacked = wms_attack_stub::sample2(&marked);
        let report = detect_multipass(&s, &enc, 1, &attacked, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(
            report.best_chi(),
            2.0,
            "passes: {:?}",
            report
                .passes
                .iter()
                .map(|(c, r)| (*c, r.bias()))
                .collect::<Vec<_>>()
        );
        assert!(report.bias() > 5);
        assert!(report.confidence() > 0.9);
    }

    /// Local stand-in for the sampling attack (the attacks crate depends
    /// on core, so core tests cannot use it without a cycle).
    mod wms_attack_stub {
        use wms_stream::{renumber, Sample};

        pub fn sample2(input: &[Sample]) -> Vec<Sample> {
            renumber(input.iter().step_by(2).copied().collect())
        }
    }

    #[test]
    fn wrong_candidates_stay_noise_level() {
        let s = scheme();
        let enc: Arc<dyn SubsetEncoder> = Arc::new(MultiHashEncoder);
        let clean = stream(8_000);
        let report = detect_multipass(&s, &enc, 1, &clean, &[1.0, 2.0, 3.0]).unwrap();
        // Unwatermarked data: even the best of three passes is small, and
        // the corrected P_fp reflects the triple look.
        let b = report.bias().unsigned_abs();
        let verdicts = report.best_report().verdicts;
        assert!(b * b <= 16 * (verdicts + 1), "bias {b} over {verdicts}");
        assert!(
            report.false_positive_probability()
                >= report.best_report().false_positive_probability()
        );
    }

    #[test]
    fn rejects_bad_candidates() {
        let s = scheme();
        let enc: Arc<dyn SubsetEncoder> = Arc::new(MultiHashEncoder);
        assert!(detect_multipass(&s, &enc, 1, &stream(100), &[]).is_err());
        assert!(detect_multipass(&s, &enc, 1, &stream(100), &[0.5]).is_err());
    }

    #[test]
    fn candidate_helpers() {
        let c = default_candidates(4, Some(2.6));
        assert!(c.contains(&1.0) && c.contains(&4.0));
        assert!(c.contains(&3.0)); // round(2.6)
        assert!(c.iter().any(|&x| (x - 2.6).abs() < 1e-9));
        let none = default_candidates(2, None);
        assert_eq!(none, vec![1.0, 2.0]);
    }

    #[test]
    fn deduplicates_candidates() {
        let s = scheme();
        let enc: Arc<dyn SubsetEncoder> = Arc::new(MultiHashEncoder);
        let r = detect_multipass(&s, &enc, 1, &stream(4_000), &[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(r.passes.len(), 2);
    }
}
