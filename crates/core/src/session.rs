//! Shared-config / per-stream-state split of the embedding and detection
//! pipelines.
//!
//! [`Embedder`](crate::Embedder) and [`Detector`](crate::Detector) bundle
//! two very different kinds of state: *configuration* (scheme, encoder,
//! watermark, quality constraints — immutable once built, identical for
//! every stream of a tenant) and *per-stream session state* (the sliding
//! window, labeler, voting buckets, scratch buffers — one copy per live
//! stream). A multi-stream engine serving thousands of sessions wants to
//! share one [`EmbedConfig`]/[`DetectConfig`] behind an `Arc` and keep
//! only a cheap [`EmbedSession`]/[`DetectSession`] per stream, so this
//! module factors the single-stream pipelines along exactly that line.
//! The wrapper types delegate here; running a session through a config is
//! bit-identical to running the equivalent `Embedder`/`Detector`.
//!
//! Scratch reuse is safe across schemes because every memo layer inside
//! [`EncoderScratch`] is stamped with [`Scheme::memo_fingerprint`] and
//! invalidates when a different scheme drives it — a session can even be
//! (re)used under another config, it merely re-warms its memos.

use crate::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use crate::detector::{BitBuckets, DetectionReport};
use crate::encoding::{trim_around, EncoderScratch, SubsetEncoder};
use crate::extremes;
use crate::labeling::Labeler;
use crate::params::WmParams;
use crate::quality::{ProposedAlteration, QualityConstraint, UndoLog};
use crate::scheme::Scheme;
use crate::transform_estimate::adjusted_degree;
use crate::watermark::Watermark;
use crate::EmbedStats;
use std::sync::Arc;
use wms_math::SlidingMoments;
use wms_stream::{Sample, SlidingWindow, Span};

/// Session snapshot magic (shared by embed and detect snapshots; the
/// kind byte after the version distinguishes them).
const SESSION_MAGIC: [u8; 4] = *b"WMSS";
/// Newest session snapshot format version this build reads and writes.
const SESSION_VERSION: u16 = 1;
/// Kind tag of an [`EmbedSession`] snapshot.
const KIND_EMBED: u8 = 0;
/// Kind tag of a [`DetectSession`] snapshot.
const KIND_DETECT: u8 = 1;

/// Serializes the replay-relevant window state (resident samples plus
/// lifetime flow counters). Scratch buffers are deliberately *not*
/// captured anywhere in a snapshot: they are pure memo/working state and
/// a restored session merely re-warms them, bit-identically.
fn write_window(w: &mut ByteWriter, win: &SlidingWindow) {
    w.put_u64(win.capacity() as u64);
    w.put_u64(win.total_pushed());
    w.put_u64(win.total_evicted());
    w.put_u64(win.len() as u64);
    for s in win.iter() {
        w.put_u64(s.index);
        w.put_u64(s.span.start);
        w.put_u64(s.span.end);
        w.put_f64(s.value);
    }
}

/// Decodes a window snapshot, validating it against the configured
/// capacity (a snapshot taken under different `WmParams::window` cannot
/// replay identically, so it is refused).
fn read_window(
    r: &mut ByteReader<'_>,
    expect_capacity: usize,
) -> Result<SlidingWindow, CheckpointError> {
    let capacity = r.get_u64()? as usize;
    if capacity != expect_capacity {
        return Err(CheckpointError::Invalid(format!(
            "window capacity {capacity} does not match configured window {expect_capacity}"
        )));
    }
    let pushed = r.get_u64()?;
    let evicted = r.get_u64()?;
    let len = r.get_len(32)?;
    let mut samples = Vec::with_capacity(len);
    for _ in 0..len {
        let index = r.get_u64()?;
        let start = r.get_u64()?;
        let end = r.get_u64()?;
        let value = r.get_f64()?;
        if end <= start {
            return Err(CheckpointError::Invalid(format!(
                "sample span [{start},{end}) is empty or inverted"
            )));
        }
        samples.push(Sample::derived(index, value, Span::new(start, end)));
    }
    SlidingWindow::from_state(capacity, samples, pushed, evicted).map_err(CheckpointError::Invalid)
}

/// Serializes the labeler's retained msb history.
fn write_labeler(w: &mut ByteWriter, labeler: &Labeler) {
    w.put_u64(labeler.seen() as u64);
    for msb in labeler.history() {
        w.put_u64(msb);
    }
}

/// Decodes a labeler snapshot under the configured shape.
fn read_labeler(
    r: &mut ByteReader<'_>,
    lambda: usize,
    stride: usize,
) -> Result<Labeler, CheckpointError> {
    let n = r.get_len(8)?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        history.push(r.get_u64()?);
    }
    Labeler::from_state(lambda, stride, &history).map_err(CheckpointError::Invalid)
}

/// Decodes the shared snapshot header and returns the stamped scheme
/// fingerprint after verifying magic, version, kind and fingerprint.
fn read_header(
    r: &mut ByteReader<'_>,
    expect_kind: u8,
    expect_fingerprint: u64,
) -> Result<(), CheckpointError> {
    let version = r.get_u16()?;
    if version != SESSION_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: SESSION_VERSION,
        });
    }
    let kind = r.get_u8()?;
    if kind != expect_kind {
        return Err(CheckpointError::WrongKind {
            expected: expect_kind,
            found: kind,
        });
    }
    let fingerprint = r.get_u64()?;
    if fingerprint != expect_fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: expect_fingerprint,
            found: fingerprint,
        });
    }
    Ok(())
}

/// Immutable embedding configuration, shareable across streams.
///
/// Holds everything the embedding algorithm reads but never writes: the
/// [`Scheme`], the subset encoder, the watermark and the quality
/// constraints. Wrap it in an `Arc` and hand each stream its own
/// [`EmbedSession`].
pub struct EmbedConfig {
    scheme: Scheme,
    encoder: Arc<dyn SubsetEncoder>,
    wm: Watermark,
    constraints: Vec<Box<dyn QualityConstraint>>,
}

impl EmbedConfig {
    /// Builds a validated embedding configuration; fails if the
    /// parameters cannot address the watermark (θ ≤ b(wm)).
    pub fn new(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm: Watermark,
    ) -> Result<Self, String> {
        scheme.params.validate_for_watermark(wm.len())?;
        Ok(EmbedConfig {
            scheme,
            encoder,
            wm,
            constraints: Vec::new(),
        })
    }

    /// Adds a quality constraint (builder style; call before sharing).
    pub fn with_constraint(mut self, c: impl QualityConstraint + 'static) -> Self {
        self.constraints.push(Box::new(c));
        self
    }

    /// The configured scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The watermark being embedded.
    pub fn watermark(&self) -> &Watermark {
        &self.wm
    }

    /// A fresh per-stream session sized for this configuration.
    pub fn new_session(&self) -> EmbedSession {
        EmbedSession::new(&self.scheme.params)
    }

    /// Feeds one sample of a session's stream, appending any samples
    /// leaving the window to `out` (which is *not* cleared). The
    /// steady-state per-item path: no allocation beyond `out`'s growth.
    pub fn push_into(&self, sess: &mut EmbedSession, s: Sample, out: &mut Vec<Sample>) {
        assert!(!sess.finished, "push after finish");
        sess.mutations += 1;
        if sess.window.is_full() {
            self.process_batch(sess);
            sess.advance_after_batch(out);
        }
        sess.window.push(s);
        sess.moments.insert(s.value);
        sess.stats.items_in += 1;
    }

    /// Flushes a session's stream end: processes the residual window and
    /// drains it into `out`.
    pub fn finish_into(&self, sess: &mut EmbedSession, out: &mut Vec<Sample>) {
        assert!(!sess.finished, "finish twice");
        sess.mutations += 1;
        sess.finished = true;
        self.process_batch(sess);
        let start = out.len();
        let n = sess.window.drain_all_into(out);
        for s in &out[start..] {
            sess.moments.remove(s.value);
        }
        sess.stats.items_out += n as u64;
    }

    /// Scans the resident window and embeds into every selected major
    /// extreme. Called when the window is full and at end of stream; in
    /// both cases every subset in the window is as complete as the space
    /// bound `$` permits (§2.2), so all majors are processed.
    fn process_batch(&self, sess: &mut EmbedSession) {
        let len = sess.window.len();
        if len < 3 {
            return;
        }
        // Snapshot the window values once into the reusable buffer; the
        // scan sees this snapshot even though embeddings mutate the
        // window mid-batch (subsets are re-read below).
        sess.window.values_into(&mut sess.values_buf);
        sess.scanner.scan_into(
            &sess.values_buf,
            self.scheme.params.radius,
            &mut sess.extremes_buf,
        );
        sess.stats.extremes_seen += sess.extremes_buf.len() as u64;
        let degree = self.scheme.params.degree;
        let mut last_major: Option<usize> = None;
        for ei in 0..sess.extremes_buf.len() {
            let e = &sess.extremes_buf[ei];
            if !e.is_major(degree) {
                continue;
            }
            sess.stats.majors_seen += 1;
            sess.stats.subset_size_sum += e.subset_len() as u64;
            last_major = Some(e.pos);
            let e_pos = e.pos;
            let subset = e.subset.clone();
            let raw = self.scheme.codec.quantize(e.value);
            sess.labeler.push(self.scheme.label_msb(raw));
            let Some(label) = sess.labeler.label() else {
                sess.stats.warmup_skipped += 1;
                continue;
            };
            let Some(bit_idx) = self.scheme.select(raw, self.wm.len()) else {
                continue;
            };
            sess.stats.selected += 1;
            let trim = trim_around(subset, e_pos, self.scheme.params.max_subset);
            // Re-read from the window: a previous embedding in this batch
            // may have altered overlapping items.
            sess.before.clear();
            let window = &sess.window;
            sess.before.extend(
                trim.clone()
                    .map(|i| window.get(i).expect("in-window").value),
            );
            let bit = self.wm.bit(bit_idx);
            let Some(res) = self.encoder.embed_with(
                &self.scheme,
                &mut sess.scratch,
                &sess.before,
                e_pos - trim.start,
                &label,
                bit,
            ) else {
                sess.stats.skipped_encoding += 1;
                continue;
            };
            sess.stats.total_iterations += res.iterations;
            // Apply through the §4.4 undo log, then check constraints.
            let window_before = sess.moments.clone();
            let mut undo = UndoLog::new();
            for (k, off) in trim.clone().enumerate() {
                let slot = sess.window.get_mut(off).expect("in-window");
                undo.record(off, slot.value);
                sess.moments.replace(slot.value, res.values[k]);
                slot.value = res.values[k];
            }
            let alt = ProposedAlteration {
                before: &sess.before,
                after: &res.values,
                window_before: &window_before,
            };
            if self.constraints.iter().all(|c| c.allows(&alt)) {
                undo.commit();
                sess.stats.embedded += 1;
            } else {
                let window = &mut sess.window;
                undo.rollback(|off, old| {
                    window.get_mut(off).expect("in-window").value = old;
                });
                sess.moments = window_before;
                sess.stats.skipped_quality += 1;
            }
        }
        sess.pending_advance = match last_major {
            Some(p) => p + 1,
            None => (len / 2).max(1),
        };
    }
}

/// Per-stream mutable state of one embedding pipeline: the sliding
/// window, labeler, running moments, statistics and every reusable
/// scratch buffer. Cheap enough to keep one per live stream; all
/// algorithm logic lives on [`EmbedConfig`].
pub struct EmbedSession {
    window: SlidingWindow,
    labeler: Labeler,
    moments: SlidingMoments,
    stats: EmbedStats,
    finished: bool,
    /// Items to emit after the current batch (set by `process_batch`).
    pending_advance: usize,
    /// Replay-state mutation counter (bumped by every push/finish).
    /// Transient bookkeeping — NOT captured in snapshots — that lets a
    /// caller cache serialized snapshots and skip re-serializing a
    /// session whose state has not changed since the cached one
    /// (incremental checkpoints). A restored session restarts at 0, so
    /// any such cache must be dropped when a session is replaced.
    mutations: u64,
    /// Encoder scratch (code memo + search buffers), reused across the
    /// whole stream.
    scratch: EncoderScratch,
    /// Window-values snapshot buffer for extreme scanning.
    values_buf: Vec<f64>,
    /// Extreme scanner (plateau-run buffer) and its output buffer.
    scanner: extremes::Scanner,
    extremes_buf: Vec<extremes::Extreme>,
    /// Pre-embedding subset snapshot buffer.
    before: Vec<f64>,
}

impl EmbedSession {
    /// Fresh state for a stream processed under the given parameters.
    /// Window capacity and labeler shape must match the driving config's
    /// params; [`EmbedConfig::new_session`] guarantees that.
    pub fn new(params: &WmParams) -> Self {
        EmbedSession {
            window: SlidingWindow::new(params.window),
            labeler: Labeler::new(params.label_len, params.label_stride),
            moments: SlidingMoments::new(),
            stats: EmbedStats::default(),
            finished: false,
            pending_advance: 0,
            mutations: 0,
            scratch: EncoderScratch::new(),
            values_buf: Vec::new(),
            scanner: extremes::Scanner::new(),
            extremes_buf: Vec::new(),
            before: Vec::new(),
        }
    }

    /// Run counters so far.
    pub fn stats(&self) -> &EmbedStats {
        &self.stats
    }

    /// Replay-state mutation counter: two reads of this session with the
    /// same count are guaranteed to [`snapshot`](Self::snapshot) to the
    /// same bytes, so callers can cache serialized snapshots across
    /// checkpoints. Resets to 0 on a fresh or restored session — drop any
    /// cache entry when the session object is replaced.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Whether `finish_into` has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Captures everything needed to resume this session bit-identically
    /// in the versioned binary snapshot format, stamped with the driving
    /// scheme's [`Scheme::memo_fingerprint`]. Scratch/memo buffers are
    /// not captured (they are re-warmed transparently after a restore).
    pub fn snapshot(&self, cfg: &EmbedConfig) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(SESSION_MAGIC);
        w.put_u16(SESSION_VERSION);
        w.put_u8(KIND_EMBED);
        w.put_u64(cfg.scheme.memo_fingerprint());
        write_window(&mut w, &self.window);
        write_labeler(&mut w, &self.labeler);
        let (n, sum, sum_sq) = self.moments.raw_state();
        w.put_u64(n);
        w.put_f64(sum);
        w.put_f64(sum_sq);
        let st = &self.stats;
        for v in [
            st.items_in,
            st.items_out,
            st.extremes_seen,
            st.majors_seen,
            st.warmup_skipped,
            st.selected,
            st.embedded,
            st.skipped_encoding,
            st.skipped_quality,
            st.total_iterations,
            st.subset_size_sum,
        ] {
            w.put_u64(v);
        }
        w.put_u8(self.finished as u8);
        w.put_u64(self.pending_advance as u64);
        w.into_bytes()
    }

    /// Rebuilds a session from a [`snapshot`](Self::snapshot) taken under
    /// the *same* configuration. A snapshot stamped with a different
    /// scheme fingerprint (different key or τ/γ/α) is rejected with
    /// [`CheckpointError::FingerprintMismatch`] — restoring it would not
    /// fail loudly later, it would silently desynchronize the watermark.
    /// Feeding the restored session the remaining stream produces output
    /// bit-identical to a session that never stopped.
    pub fn restore(cfg: &EmbedConfig, bytes: &[u8]) -> Result<EmbedSession, CheckpointError> {
        let params = &cfg.scheme.params;
        let mut r = ByteReader::with_magic(bytes, SESSION_MAGIC)?;
        read_header(&mut r, KIND_EMBED, cfg.scheme.memo_fingerprint())?;
        let window = read_window(&mut r, params.window)?;
        let labeler = read_labeler(&mut r, params.label_len, params.label_stride)?;
        let n = r.get_u64()?;
        let sum = r.get_f64()?;
        let sum_sq = r.get_f64()?;
        if n != window.len() as u64 {
            return Err(CheckpointError::Invalid(format!(
                "moments cover {n} values but the window holds {}",
                window.len()
            )));
        }
        let moments = SlidingMoments::from_raw_state(n, sum, sum_sq);
        let mut stat = [0u64; 11];
        for v in stat.iter_mut() {
            *v = r.get_u64()?;
        }
        let stats = EmbedStats {
            items_in: stat[0],
            items_out: stat[1],
            extremes_seen: stat[2],
            majors_seen: stat[3],
            warmup_skipped: stat[4],
            selected: stat[5],
            embedded: stat[6],
            skipped_encoding: stat[7],
            skipped_quality: stat[8],
            total_iterations: stat[9],
            subset_size_sum: stat[10],
        };
        let finished = r.get_u8()? != 0;
        let pending_advance = r.get_u64()? as usize;
        r.finish()?;
        let mut sess = EmbedSession::new(params);
        sess.window = window;
        sess.labeler = labeler;
        sess.moments = moments;
        sess.stats = stats;
        sess.finished = finished;
        sess.pending_advance = pending_advance;
        Ok(sess)
    }

    fn advance_after_batch(&mut self, out: &mut Vec<Sample>) {
        let n = self.pending_advance.max(1);
        let start = out.len();
        let emitted = self.window.advance_into(n, out);
        for s in &out[start..] {
            self.moments.remove(s.value);
        }
        self.stats.items_out += emitted as u64;
        self.pending_advance = 0;
    }
}

/// Immutable detection configuration, shareable across streams.
pub struct DetectConfig {
    scheme: Scheme,
    encoder: Arc<dyn SubsetEncoder>,
    wm_len: usize,
    chi: f64,
    effective_degree: usize,
}

impl DetectConfig {
    /// Builds a validated detection configuration for a watermark of
    /// `wm_len` bits under a fixed transform degree `chi` (χ ≥ 1).
    pub fn new(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm_len: usize,
        chi: f64,
    ) -> Result<Self, String> {
        scheme.params.validate_for_watermark(wm_len)?;
        if chi.is_nan() || chi < 1.0 {
            return Err(format!("transform degree must be >= 1, got {chi}"));
        }
        let effective_degree = adjusted_degree(scheme.params.degree, chi);
        Ok(DetectConfig {
            scheme,
            encoder,
            wm_len,
            chi,
            effective_degree,
        })
    }

    /// The configured scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Watermark length being looked for.
    pub fn wm_len(&self) -> usize {
        self.wm_len
    }

    /// ν′ actually used by the scan.
    pub fn effective_degree(&self) -> usize {
        self.effective_degree
    }

    /// A fresh per-stream session sized for this configuration.
    pub fn new_session(&self) -> DetectSession {
        DetectSession::new(&self.scheme.params, self.wm_len)
    }

    /// Feeds one sample of a session's stream. Steady state allocates
    /// nothing: processed data is discarded from the window rather than
    /// collected.
    pub fn push(&self, sess: &mut DetectSession, s: Sample) {
        assert!(!sess.finished, "push after finish");
        sess.mutations += 1;
        if sess.window.is_full() {
            self.process_batch(sess);
            let n = sess.pending_advance.max(1);
            sess.window.discard(n);
            sess.pending_advance = 0;
        }
        sess.window.push(s);
    }

    /// Flushes a session and produces its report. The session is spent
    /// afterwards (further pushes panic).
    pub fn finish(&self, sess: &mut DetectSession) -> DetectionReport {
        assert!(!sess.finished, "finish twice");
        sess.mutations += 1;
        sess.finished = true;
        self.process_batch(sess);
        DetectionReport {
            buckets: std::mem::take(&mut sess.buckets),
            majors_seen: sess.majors_seen,
            warmup_skipped: sess.warmup_skipped,
            selected: sess.selected,
            verdicts: sess.verdicts,
            abstained: sess.abstained,
            effective_degree: self.effective_degree,
            assumed_transform_degree: self.chi,
        }
    }

    fn process_batch(&self, sess: &mut DetectSession) {
        let len = sess.window.len();
        if len < 3 {
            return;
        }
        sess.window.values_into(&mut sess.values_buf);
        sess.scanner.scan_into(
            &sess.values_buf,
            self.scheme.params.radius,
            &mut sess.extremes_buf,
        );
        let mut last_major: Option<usize> = None;
        for ei in 0..sess.extremes_buf.len() {
            let e = &sess.extremes_buf[ei];
            if !e.is_major(self.effective_degree) {
                continue;
            }
            sess.majors_seen += 1;
            last_major = Some(e.pos);
            let e_pos = e.pos;
            let subset_range = e.subset.clone();
            let raw = self.scheme.codec.quantize(e.value);
            sess.labeler.push(self.scheme.label_msb(raw));
            let Some(label) = sess.labeler.label() else {
                sess.warmup_skipped += 1;
                continue;
            };
            let Some(bit_idx) = self.scheme.select(raw, sess.buckets.len()) else {
                continue;
            };
            sess.selected += 1;
            let trim = trim_around(subset_range, e_pos, self.scheme.params.max_subset);
            sess.subset_buf.clear();
            sess.subset_buf.extend_from_slice(&sess.values_buf[trim]);
            let vote =
                self.encoder
                    .detect_with(&self.scheme, &mut sess.scratch, &sess.subset_buf, &label);
            match vote.verdict() {
                Some(true) => {
                    sess.buckets[bit_idx].true_count += 1;
                    sess.verdicts += 1;
                }
                Some(false) => {
                    sess.buckets[bit_idx].false_count += 1;
                    sess.verdicts += 1;
                }
                None => sess.abstained += 1,
            }
        }
        sess.pending_advance = match last_major {
            Some(p) => p + 1,
            None => (len / 2).max(1),
        };
    }
}

/// Per-stream mutable state of one detection pipeline; the mirror of
/// [`EmbedSession`]. All algorithm logic lives on [`DetectConfig`].
pub struct DetectSession {
    window: SlidingWindow,
    labeler: Labeler,
    buckets: Vec<BitBuckets>,
    majors_seen: u64,
    warmup_skipped: u64,
    selected: u64,
    verdicts: u64,
    abstained: u64,
    finished: bool,
    pending_advance: usize,
    /// Replay-state mutation counter; see
    /// [`EmbedSession::mutation_count`] — same contract, same caveats.
    mutations: u64,
    /// Encoder scratch (code memo + buffers), reused across the stream.
    scratch: EncoderScratch,
    /// Window-values snapshot buffer for extreme scanning.
    values_buf: Vec<f64>,
    /// Extreme scanner (plateau-run buffer) and its output buffer.
    scanner: extremes::Scanner,
    extremes_buf: Vec<extremes::Extreme>,
    /// Trimmed-subset values buffer.
    subset_buf: Vec<f64>,
}

impl DetectSession {
    /// Fresh state for a stream processed under the given parameters and
    /// a `wm_len`-bit mark. Both must match the driving config;
    /// [`DetectConfig::new_session`] guarantees that.
    pub fn new(params: &WmParams, wm_len: usize) -> Self {
        DetectSession {
            window: SlidingWindow::new(params.window),
            labeler: Labeler::new(params.label_len, params.label_stride),
            buckets: vec![BitBuckets::default(); wm_len],
            majors_seen: 0,
            warmup_skipped: 0,
            selected: 0,
            verdicts: 0,
            abstained: 0,
            finished: false,
            pending_advance: 0,
            mutations: 0,
            scratch: EncoderScratch::new(),
            values_buf: Vec::new(),
            scanner: extremes::Scanner::new(),
            extremes_buf: Vec::new(),
            subset_buf: Vec::new(),
        }
    }

    /// Major extremes examined so far (progress reporting).
    pub fn majors_seen(&self) -> u64 {
        self.majors_seen
    }

    /// Replay-state mutation counter; see
    /// [`EmbedSession::mutation_count`] — same contract, same caveats.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Whether `finish` has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Captures everything needed to resume this session bit-identically;
    /// the detection mirror of [`EmbedSession::snapshot`].
    pub fn snapshot(&self, cfg: &DetectConfig) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(SESSION_MAGIC);
        w.put_u16(SESSION_VERSION);
        w.put_u8(KIND_DETECT);
        w.put_u64(cfg.scheme.memo_fingerprint());
        write_window(&mut w, &self.window);
        write_labeler(&mut w, &self.labeler);
        w.put_u64(self.buckets.len() as u64);
        for b in &self.buckets {
            w.put_u64(b.true_count);
            w.put_u64(b.false_count);
        }
        for v in [
            self.majors_seen,
            self.warmup_skipped,
            self.selected,
            self.verdicts,
            self.abstained,
        ] {
            w.put_u64(v);
        }
        w.put_u8(self.finished as u8);
        w.put_u64(self.pending_advance as u64);
        w.into_bytes()
    }

    /// Rebuilds a session from a [`snapshot`](Self::snapshot) taken under
    /// the same configuration; the detection mirror of
    /// [`EmbedSession::restore`] with the same fingerprint/kind/version
    /// rejection semantics.
    pub fn restore(cfg: &DetectConfig, bytes: &[u8]) -> Result<DetectSession, CheckpointError> {
        let params = &cfg.scheme.params;
        let mut r = ByteReader::with_magic(bytes, SESSION_MAGIC)?;
        read_header(&mut r, KIND_DETECT, cfg.scheme.memo_fingerprint())?;
        let window = read_window(&mut r, params.window)?;
        let labeler = read_labeler(&mut r, params.label_len, params.label_stride)?;
        let wm_len = r.get_len(16)?;
        if wm_len != cfg.wm_len {
            return Err(CheckpointError::Invalid(format!(
                "snapshot votes over {wm_len} watermark bits, config expects {}",
                cfg.wm_len
            )));
        }
        let mut buckets = Vec::with_capacity(wm_len);
        for _ in 0..wm_len {
            buckets.push(BitBuckets {
                true_count: r.get_u64()?,
                false_count: r.get_u64()?,
            });
        }
        let majors_seen = r.get_u64()?;
        let warmup_skipped = r.get_u64()?;
        let selected = r.get_u64()?;
        let verdicts = r.get_u64()?;
        let abstained = r.get_u64()?;
        let finished = r.get_u8()? != 0;
        let pending_advance = r.get_u64()? as usize;
        r.finish()?;
        let mut sess = DetectSession::new(params, cfg.wm_len);
        sess.window = window;
        sess.labeler = labeler;
        sess.buckets = buckets;
        sess.majors_seen = majors_seen;
        sess.warmup_skipped = warmup_skipped;
        sess.selected = selected;
        sess.verdicts = verdicts;
        sess.abstained = abstained;
        sess.finished = finished;
        sess.pending_advance = pending_advance;
        Ok(sess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::initial::InitialEncoder;
    use crate::params::WmParams;
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn config() -> EmbedConfig {
        let p = WmParams {
            window: 256,
            degree: 3,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            ..WmParams::default()
        };
        let scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(77))).unwrap();
        EmbedConfig::new(scheme, Arc::new(InitialEncoder), Watermark::single(true)).unwrap()
    }

    fn stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.35 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 17.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn shared_config_drives_independent_sessions() {
        let cfg = Arc::new(config());
        let input = stream(2000);
        // Two sessions over the same config must not interfere: each
        // produces exactly what a dedicated Embedder would.
        let mut a = cfg.new_session();
        let mut b = cfg.new_session();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for &s in &input {
            cfg.push_into(&mut a, s, &mut out_a);
            cfg.push_into(&mut b, s, &mut out_b);
        }
        cfg.finish_into(&mut a, &mut out_a);
        cfg.finish_into(&mut b, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().embedded > 0);
        assert!(a.is_finished());
    }

    #[test]
    #[should_panic(expected = "finish twice")]
    fn double_finish_panics() {
        let cfg = config();
        let mut s = cfg.new_session();
        let mut out = Vec::new();
        cfg.finish_into(&mut s, &mut out);
        cfg.finish_into(&mut s, &mut out);
    }

    /// Snapshot/restore at every ~prime offset must be invisible in the
    /// output: the restored session replays bit-identically.
    #[test]
    fn embed_snapshot_restore_is_bit_identical() {
        let cfg = config();
        let input = stream(2400);
        // Uninterrupted reference.
        let mut reference = cfg.new_session();
        let mut want = Vec::new();
        for &s in &input {
            cfg.push_into(&mut reference, s, &mut want);
        }
        cfg.finish_into(&mut reference, &mut want);

        for cut in [1usize, 97, 255, 256, 257, 1031, 2399] {
            let mut first = cfg.new_session();
            let mut got = Vec::new();
            for &s in &input[..cut] {
                cfg.push_into(&mut first, s, &mut got);
            }
            let bytes = first.snapshot(&cfg);
            drop(first); // the "crash"
            let mut resumed = EmbedSession::restore(&cfg, &bytes).unwrap();
            for &s in &input[cut..] {
                cfg.push_into(&mut resumed, s, &mut got);
            }
            cfg.finish_into(&mut resumed, &mut got);
            assert_eq!(got.len(), want.len(), "cut {cut}: length");
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "cut {cut} sample {i}: {} vs {}",
                    a.value,
                    b.value
                );
                assert_eq!(a.index, b.index, "cut {cut} sample {i}");
                assert_eq!(a.span, b.span, "cut {cut} sample {i}");
            }
            assert_eq!(resumed.stats(), reference.stats(), "cut {cut}: stats");
        }
    }

    #[test]
    fn detect_snapshot_restore_is_bit_identical() {
        let cfg = config();
        let input = stream(3000);
        let mut sess = cfg.new_session();
        let mut marked = Vec::new();
        for &s in &input {
            cfg.push_into(&mut sess, s, &mut marked);
        }
        cfg.finish_into(&mut sess, &mut marked);

        let dcfg =
            DetectConfig::new(cfg.scheme().clone(), Arc::new(InitialEncoder), 1, 1.0).unwrap();
        let mut reference = dcfg.new_session();
        for &s in &marked {
            dcfg.push(&mut reference, s);
        }
        let want = dcfg.finish(&mut reference);

        for cut in [1usize, 300, 1500, 2999] {
            let mut first = dcfg.new_session();
            for &s in &marked[..cut] {
                dcfg.push(&mut first, s);
            }
            let bytes = first.snapshot(&dcfg);
            let mut resumed = DetectSession::restore(&dcfg, &bytes).unwrap();
            for &s in &marked[cut..] {
                dcfg.push(&mut resumed, s);
            }
            assert_eq!(dcfg.finish(&mut resumed), want, "cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_scheme_fingerprint() {
        let cfg = config();
        let mut sess = cfg.new_session();
        let mut out = Vec::new();
        for &s in &stream(500) {
            cfg.push_into(&mut sess, s, &mut out);
        }
        let bytes = sess.snapshot(&cfg);

        // Same parameters, different key: fingerprints differ.
        let p = cfg.scheme().params;
        let other_scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(78))).unwrap();
        let other = EmbedConfig::new(
            other_scheme,
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let err = EmbedSession::restore(&other, &bytes).err().unwrap();
        assert!(
            matches!(err, crate::CheckpointError::FingerprintMismatch { expected, found }
                if expected != found),
            "{err:?}"
        );
    }

    #[test]
    fn restore_rejects_wrong_kind_and_corruption() {
        let cfg = config();
        let sess = cfg.new_session();
        let bytes = sess.snapshot(&cfg);

        // An embed snapshot is not a detect snapshot.
        let dcfg =
            DetectConfig::new(cfg.scheme().clone(), Arc::new(InitialEncoder), 1, 1.0).unwrap();
        assert!(matches!(
            DetectSession::restore(&dcfg, &bytes).err().unwrap(),
            crate::CheckpointError::WrongKind { .. }
        ));

        // Any truncation fails loudly, never panics.
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(
                EmbedSession::restore(&cfg, &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }

        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            EmbedSession::restore(&cfg, &padded).err().unwrap(),
            crate::CheckpointError::TrailingBytes
        );

        // A future format version is refused, not misparsed.
        let mut vnext = bytes;
        vnext[4] = 0xFF; // version little-endian low byte
        assert!(matches!(
            EmbedSession::restore(&cfg, &vnext).err().unwrap(),
            crate::CheckpointError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn detect_session_roundtrip() {
        let cfg = config();
        let input = stream(3000);
        let mut sess = cfg.new_session();
        let mut marked = Vec::new();
        for &s in &input {
            cfg.push_into(&mut sess, s, &mut marked);
        }
        cfg.finish_into(&mut sess, &mut marked);

        let dcfg =
            DetectConfig::new(cfg.scheme().clone(), Arc::new(InitialEncoder), 1, 1.0).unwrap();
        let mut d = dcfg.new_session();
        for &s in &marked {
            dcfg.push(&mut d, s);
        }
        let report = dcfg.finish(&mut d);
        assert!(d.is_finished());
        assert!(report.bias() > 0, "bias {}", report.bias());
    }
}
