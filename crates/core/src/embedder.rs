//! Single-pass watermark embedding (§3.2 with the §4.1–§4.4 improvements).
//!
//! The embedder owns a bounded [`SlidingWindow`](wms_stream::SlidingWindow)
//! and processes the stream strictly once: samples go in, (occasionally
//! altered) samples come out, never reordered, never buffered beyond `$`
//! items. Whenever the window fills (and once more at end of stream) the
//! resident data is scanned for major extremes; each one advances the
//! labeler, passes through the selection criterion, and — if selected —
//! has one watermark bit embedded into its characteristic subset by the
//! configured [`SubsetEncoder`], subject to the quality constraints
//! (violations roll back through the undo log).
//!
//! [`Embedder`] is the single-stream convenience wrapper; the algorithm
//! itself lives in [`crate::session`] as an [`EmbedConfig`] (immutable,
//! shareable) driving an [`EmbedSession`] (per-stream state), which is
//! what the multi-stream engine uses directly.

use crate::encoding::SubsetEncoder;
use crate::quality::QualityConstraint;
use crate::scheme::Scheme;
use crate::session::{EmbedConfig, EmbedSession};
use crate::watermark::Watermark;
use std::sync::Arc;
use wms_stream::Sample;

/// Counters describing one embedding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbedStats {
    /// Samples consumed.
    pub items_in: u64,
    /// Samples emitted (equals `items_in` after `finish`).
    pub items_out: u64,
    /// Extremes encountered during window scans.
    pub extremes_seen: u64,
    /// Major extremes (degree ν) encountered.
    pub majors_seen: u64,
    /// Major extremes skipped during labeler warm-up.
    pub warmup_skipped: u64,
    /// Major extremes passing the selection criterion.
    pub selected: u64,
    /// Bits successfully embedded.
    pub embedded: u64,
    /// Selected extremes the encoder could not encode within budget.
    pub skipped_encoding: u64,
    /// Embeddings rolled back by quality constraints.
    pub skipped_quality: u64,
    /// Total encoder search iterations.
    pub total_iterations: u64,
    /// Sum of characteristic-subset sizes over majors (pre-trim).
    pub subset_size_sum: u64,
}

impl EmbedStats {
    /// Measured ξ(ν, δ): items per major extreme.
    pub fn xi(&self) -> Option<f64> {
        if self.majors_seen == 0 {
            None
        } else {
            Some(self.items_in as f64 / self.majors_seen as f64)
        }
    }

    /// Average characteristic-subset size of the majors.
    pub fn avg_subset_size(&self) -> Option<f64> {
        if self.majors_seen == 0 {
            None
        } else {
            Some(self.subset_size_sum as f64 / self.majors_seen as f64)
        }
    }

    /// Mean encoder iterations per embedded bit.
    pub fn iterations_per_embedding(&self) -> Option<f64> {
        if self.embedded == 0 {
            None
        } else {
            Some(self.total_iterations as f64 / self.embedded as f64)
        }
    }
}

/// Streaming watermark embedder: one [`EmbedConfig`] driving one
/// [`EmbedSession`].
pub struct Embedder {
    config: EmbedConfig,
    session: EmbedSession,
}

impl Embedder {
    /// Creates an embedder; fails if the parameters cannot address the
    /// watermark (θ ≤ b(wm)) or are otherwise invalid.
    pub fn new(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm: Watermark,
    ) -> Result<Self, String> {
        let config = EmbedConfig::new(scheme, encoder, wm)?;
        let session = config.new_session();
        Ok(Embedder { config, session })
    }

    /// Adds a quality constraint (builder style).
    pub fn with_constraint(mut self, c: impl QualityConstraint + 'static) -> Self {
        self.config = self.config.with_constraint(c);
        self
    }

    /// Run counters so far.
    pub fn stats(&self) -> &EmbedStats {
        self.session.stats()
    }

    /// The configured scheme.
    pub fn scheme(&self) -> &Scheme {
        self.config.scheme()
    }

    /// The shared configuration / per-stream state, consumed. A
    /// multi-stream caller can keep the config behind an `Arc` and attach
    /// fresh sessions to it (see [`crate::session`]).
    pub fn into_parts(self) -> (EmbedConfig, EmbedSession) {
        (self.config, self.session)
    }

    /// Feeds one sample; returns any samples leaving the window.
    ///
    /// Thin wrapper over [`push_into`](Self::push_into), which reuses one
    /// output buffer instead of allocating a (mostly empty) `Vec` per
    /// sample; every internal caller has moved there. Gated behind the
    /// `legacy-api` feature so `-D warnings` builds cannot reach it by
    /// accident.
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use push_into with a reused output buffer")]
    pub fn push(&mut self, s: Sample) -> Vec<Sample> {
        let mut out = Vec::new();
        self.push_into(s, &mut out);
        out
    }

    /// Feeds one sample, appending any samples leaving the window to
    /// `out` (which is *not* cleared). The steady-state per-item path:
    /// no allocation happens here beyond `out`'s own growth.
    pub fn push_into(&mut self, s: Sample, out: &mut Vec<Sample>) {
        self.config.push_into(&mut self.session, s, out);
    }

    /// Flushes the stream end: processes the residual window and drains it.
    ///
    /// Thin wrapper over [`finish_into`](Self::finish_into), which
    /// appends to a caller-owned buffer instead of allocating. Gated
    /// behind the `legacy-api` feature like [`push`](Self::push).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use finish_into with a reused output buffer")]
    pub fn finish(&mut self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// Flushes the stream end, appending the residual samples to `out`.
    pub fn finish_into(&mut self, out: &mut Vec<Sample>) {
        self.config.finish_into(&mut self.session, out);
    }

    /// Convenience: embeds into an in-memory stream in one call. Reserves
    /// the output once and drives the buffer-reusing push path.
    pub fn embed_stream(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm: Watermark,
        input: &[Sample],
    ) -> Result<(Vec<Sample>, EmbedStats), String> {
        let mut e = Embedder::new(scheme, encoder, wm)?;
        let mut out = Vec::with_capacity(input.len());
        for &s in input {
            e.push_into(s, &mut out);
        }
        e.finish_into(&mut out);
        Ok((out, *e.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::initial::InitialEncoder;
    use crate::encoding::multihash::MultiHashEncoder;
    use crate::params::WmParams;
    use crate::quality::MaxItemChange;
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn test_params() -> WmParams {
        WmParams {
            window: 256,
            degree: 3,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            ..WmParams::default()
        }
    }

    fn scheme(p: WmParams) -> Scheme {
        Scheme::new(p, KeyedHash::md5(Key::from_u64(1234))).unwrap()
    }

    /// A smooth oscillating normalized stream with fat extremes.
    fn test_stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.35 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 17.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn preserves_stream_shape() {
        let (out, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        assert_eq!(out.len(), 2000);
        assert_eq!(stats.items_in, 2000);
        assert_eq!(stats.items_out, 2000);
        // Order and provenance intact.
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.span.start, i as u64);
        }
    }

    #[test]
    fn embeds_into_selected_majors() {
        let (_, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(3000),
        )
        .unwrap();
        assert!(stats.majors_seen > 10, "{stats:?}");
        assert!(stats.selected > 0, "{stats:?}");
        assert!(stats.embedded > 0, "{stats:?}");
        assert!(stats.embedded <= stats.selected);
        let xi = stats.xi().unwrap();
        assert!((10.0..200.0).contains(&xi), "xi {xi}");
    }

    #[test]
    fn alterations_are_small() {
        let input = test_stream(2000);
        let (out, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &input,
        )
        .unwrap();
        assert!(stats.embedded > 0);
        let mut max_change = 0.0f64;
        for (a, b) in out.iter().zip(&input) {
            max_change = max_change.max((a.value - b.value).abs());
        }
        // Initial encoding harmonizes within δ of the extreme.
        assert!(max_change <= 0.011, "max change {max_change}");
        assert!(max_change > 0.0, "something must have changed");
    }

    #[test]
    fn multihash_embedding_runs() {
        let p = WmParams {
            min_active: Some(4),
            ..test_params()
        };
        let (_, stats) = Embedder::embed_stream(
            scheme(p),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        assert!(stats.embedded > 0, "{stats:?}");
        assert!(stats.total_iterations >= stats.embedded);
    }

    #[test]
    fn quality_constraint_rolls_back() {
        let input = test_stream(2000);
        let s = scheme(test_params());
        let strict = Embedder::new(s.clone(), Arc::new(InitialEncoder), Watermark::single(true))
            .unwrap()
            .with_constraint(MaxItemChange { max: 0.0 }); // nothing allowed
        let mut e = strict;
        let mut out = Vec::new();
        for &smp in &input {
            e.push_into(smp, &mut out);
        }
        e.finish_into(&mut out);
        assert_eq!(e.stats().embedded, 0);
        assert!(e.stats().skipped_quality > 0);
        // Stream is bit-identical to the input — rollback worked.
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn permissive_constraint_does_not_block() {
        let (_, stats_free) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        let s = scheme(test_params());
        let mut e = Embedder::new(s, Arc::new(InitialEncoder), Watermark::single(true))
            .unwrap()
            .with_constraint(MaxItemChange { max: 1.0 });
        let input = test_stream(2000);
        let mut out = Vec::new();
        for &smp in &input {
            e.push_into(smp, &mut out);
        }
        e.finish_into(&mut out);
        assert_eq!(e.stats().embedded, stats_free.embedded);
        assert_eq!(e.stats().skipped_quality, 0);
    }

    #[test]
    fn theta_must_exceed_watermark_length() {
        let p = WmParams {
            selection_modulus: 4,
            ..test_params()
        };
        let err = Embedder::new(
            scheme_unchecked(p),
            Arc::new(InitialEncoder),
            Watermark::from_bits(vec![true; 8]),
        );
        assert!(err.is_err());
    }

    fn scheme_unchecked(p: WmParams) -> Scheme {
        Scheme::new(p, KeyedHash::md5(Key::from_u64(0))).unwrap()
    }

    #[test]
    fn larger_theta_selects_fewer() {
        let mk = |theta: u64| {
            let p = WmParams {
                selection_modulus: theta,
                ..test_params()
            };
            Embedder::embed_stream(
                scheme(p),
                Arc::new(InitialEncoder),
                Watermark::single(true),
                &test_stream(4000),
            )
            .unwrap()
            .1
        };
        let dense = mk(2);
        let sparse = mk(16);
        assert!(
            sparse.selected < dense.selected,
            "θ=16 should select fewer: {} vs {}",
            sparse.selected,
            dense.selected
        );
    }

    #[test]
    #[should_panic(expected = "push after finish")]
    fn push_after_finish_panics() {
        let mut e = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let mut out = Vec::new();
        e.finish_into(&mut out);
        e.push_into(Sample::new(0, 0.0), &mut out);
    }

    /// The deprecated wrappers must stay bit-identical to the `_into`
    /// path — they remain part of the `legacy-api` public surface. (Runs
    /// in workspace builds, where wms-bench's dependency unifies the
    /// feature on.)
    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_match_push_into() {
        let input = test_stream(1500);
        let mut legacy = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let mut modern = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let mut out_legacy = Vec::new();
        let mut out_modern = Vec::new();
        for &s in &input {
            out_legacy.extend(legacy.push(s));
            modern.push_into(s, &mut out_modern);
        }
        out_legacy.extend(legacy.finish());
        modern.finish_into(&mut out_modern);
        assert_eq!(out_legacy, out_modern);
        assert_eq!(legacy.stats(), modern.stats());
    }

    #[test]
    fn stats_conservation() {
        let mut e = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let input = test_stream(1000);
        let mut out = Vec::new();
        for &s in &input {
            e.push_into(s, &mut out);
        }
        e.finish_into(&mut out);
        assert_eq!(out.len(), 1000);
        assert_eq!(e.stats().items_in, 1000);
        assert_eq!(e.stats().items_out, 1000);
    }

    #[test]
    fn into_parts_resumes_nothing_but_exposes_state() {
        let e = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let (config, session) = e.into_parts();
        assert_eq!(session.stats().items_in, 0);
        assert!(!session.is_finished());
        assert_eq!(config.watermark().len(), 1);
    }
}
