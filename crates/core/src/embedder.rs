//! Single-pass watermark embedding (§3.2 with the §4.1–§4.4 improvements).
//!
//! The embedder owns a bounded [`SlidingWindow`] and processes the stream
//! strictly once: samples go in, (occasionally altered) samples come out,
//! never reordered, never buffered beyond `$` items. Whenever the window
//! fills (and once more at end of stream) the resident data is scanned for
//! major extremes; each one advances the labeler, passes through the
//! selection criterion, and — if selected — has one watermark bit embedded
//! into its characteristic subset by the configured [`SubsetEncoder`],
//! subject to the quality constraints (violations roll back through the
//! undo log).

use crate::encoding::{trim_around, EncoderScratch, SubsetEncoder};
use crate::extremes;
use crate::labeling::Labeler;
use crate::quality::{ProposedAlteration, QualityConstraint, UndoLog};
use crate::scheme::Scheme;
use crate::watermark::Watermark;
use std::sync::Arc;
use wms_math::SlidingMoments;
use wms_stream::{Sample, SlidingWindow};

/// Counters describing one embedding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmbedStats {
    /// Samples consumed.
    pub items_in: u64,
    /// Samples emitted (equals `items_in` after `finish`).
    pub items_out: u64,
    /// Extremes encountered during window scans.
    pub extremes_seen: u64,
    /// Major extremes (degree ν) encountered.
    pub majors_seen: u64,
    /// Major extremes skipped during labeler warm-up.
    pub warmup_skipped: u64,
    /// Major extremes passing the selection criterion.
    pub selected: u64,
    /// Bits successfully embedded.
    pub embedded: u64,
    /// Selected extremes the encoder could not encode within budget.
    pub skipped_encoding: u64,
    /// Embeddings rolled back by quality constraints.
    pub skipped_quality: u64,
    /// Total encoder search iterations.
    pub total_iterations: u64,
    /// Sum of characteristic-subset sizes over majors (pre-trim).
    pub subset_size_sum: u64,
}

impl EmbedStats {
    /// Measured ξ(ν, δ): items per major extreme.
    pub fn xi(&self) -> Option<f64> {
        if self.majors_seen == 0 {
            None
        } else {
            Some(self.items_in as f64 / self.majors_seen as f64)
        }
    }

    /// Average characteristic-subset size of the majors.
    pub fn avg_subset_size(&self) -> Option<f64> {
        if self.majors_seen == 0 {
            None
        } else {
            Some(self.subset_size_sum as f64 / self.majors_seen as f64)
        }
    }

    /// Mean encoder iterations per embedded bit.
    pub fn iterations_per_embedding(&self) -> Option<f64> {
        if self.embedded == 0 {
            None
        } else {
            Some(self.total_iterations as f64 / self.embedded as f64)
        }
    }
}

/// Streaming watermark embedder.
pub struct Embedder {
    scheme: Scheme,
    encoder: Arc<dyn SubsetEncoder>,
    wm: Watermark,
    window: SlidingWindow,
    labeler: Labeler,
    moments: SlidingMoments,
    constraints: Vec<Box<dyn QualityConstraint>>,
    stats: EmbedStats,
    finished: bool,
    /// Items to emit after the current batch (set by `process_batch`).
    pending_advance: usize,
    /// Encoder scratch (code memo + search buffers), reused across the
    /// whole stream.
    scratch: EncoderScratch,
    /// Window-values snapshot buffer for extreme scanning.
    values_buf: Vec<f64>,
    /// Extreme scanner (plateau-run buffer) and its output buffer.
    scanner: extremes::Scanner,
    extremes_buf: Vec<extremes::Extreme>,
    /// Pre-embedding subset snapshot buffer.
    before: Vec<f64>,
}

impl Embedder {
    /// Creates an embedder; fails if the parameters cannot address the
    /// watermark (θ ≤ b(wm)) or are otherwise invalid.
    pub fn new(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm: Watermark,
    ) -> Result<Self, String> {
        scheme.params.validate_for_watermark(wm.len())?;
        let p = &scheme.params;
        let labeler = Labeler::new(p.label_len, p.label_stride);
        let window = SlidingWindow::new(p.window);
        Ok(Embedder {
            scheme,
            encoder,
            wm,
            window,
            labeler,
            moments: SlidingMoments::new(),
            constraints: Vec::new(),
            stats: EmbedStats::default(),
            finished: false,
            pending_advance: 0,
            scratch: EncoderScratch::new(),
            values_buf: Vec::new(),
            scanner: extremes::Scanner::new(),
            extremes_buf: Vec::new(),
            before: Vec::new(),
        })
    }

    /// Adds a quality constraint (builder style).
    pub fn with_constraint(mut self, c: impl QualityConstraint + 'static) -> Self {
        self.constraints.push(Box::new(c));
        self
    }

    /// Run counters so far.
    pub fn stats(&self) -> &EmbedStats {
        &self.stats
    }

    /// The configured scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Feeds one sample; returns any samples leaving the window.
    ///
    /// Thin wrapper over [`push_into`](Self::push_into); steady-state
    /// callers should prefer that variant, which reuses one output
    /// buffer instead of allocating a (mostly empty) `Vec` per sample.
    pub fn push(&mut self, s: Sample) -> Vec<Sample> {
        let mut out = Vec::new();
        self.push_into(s, &mut out);
        out
    }

    /// Feeds one sample, appending any samples leaving the window to
    /// `out` (which is *not* cleared). The steady-state per-item path:
    /// no allocation happens here beyond `out`'s own growth.
    pub fn push_into(&mut self, s: Sample, out: &mut Vec<Sample>) {
        assert!(!self.finished, "push after finish");
        if self.window.is_full() {
            self.process_batch();
            self.advance_after_batch(out);
        }
        self.window.push(s);
        self.moments.insert(s.value);
        self.stats.items_in += 1;
    }

    /// Flushes the stream end: processes the residual window and drains it.
    pub fn finish(&mut self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// [`finish`](Self::finish), appending the residual samples to `out`.
    pub fn finish_into(&mut self, out: &mut Vec<Sample>) {
        assert!(!self.finished, "finish twice");
        self.finished = true;
        self.process_batch();
        let start = out.len();
        let n = self.window.drain_all_into(out);
        for s in &out[start..] {
            self.moments.remove(s.value);
        }
        self.stats.items_out += n as u64;
    }

    /// Convenience: embeds into an in-memory stream in one call. Reserves
    /// the output once and drives the buffer-reusing push path.
    pub fn embed_stream(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm: Watermark,
        input: &[Sample],
    ) -> Result<(Vec<Sample>, EmbedStats), String> {
        let mut e = Embedder::new(scheme, encoder, wm)?;
        let mut out = Vec::with_capacity(input.len());
        for &s in input {
            e.push_into(s, &mut out);
        }
        e.finish_into(&mut out);
        Ok((out, *e.stats()))
    }

    /// Scans the resident window and embeds into every selected major
    /// extreme. Called when the window is full and at end of stream; in
    /// both cases every subset in the window is as complete as the space
    /// bound `$` permits (§2.2), so all majors are processed.
    fn process_batch(&mut self) {
        let len = self.window.len();
        if len < 3 {
            return;
        }
        // Snapshot the window values once into the reusable buffer; the
        // scan sees this snapshot even though embeddings mutate the
        // window mid-batch (subsets are re-read below).
        self.window.values_into(&mut self.values_buf);
        self.scanner.scan_into(
            &self.values_buf,
            self.scheme.params.radius,
            &mut self.extremes_buf,
        );
        self.stats.extremes_seen += self.extremes_buf.len() as u64;
        let degree = self.scheme.params.degree;
        let mut last_major: Option<usize> = None;
        for ei in 0..self.extremes_buf.len() {
            let e = &self.extremes_buf[ei];
            if !e.is_major(degree) {
                continue;
            }
            self.stats.majors_seen += 1;
            self.stats.subset_size_sum += e.subset_len() as u64;
            last_major = Some(e.pos);
            let e_pos = e.pos;
            let subset = e.subset.clone();
            let raw = self.scheme.codec.quantize(e.value);
            self.labeler.push(self.scheme.label_msb(raw));
            let Some(label) = self.labeler.label() else {
                self.stats.warmup_skipped += 1;
                continue;
            };
            let Some(bit_idx) = self.scheme.select(raw, self.wm.len()) else {
                continue;
            };
            self.stats.selected += 1;
            let trim = trim_around(subset, e_pos, self.scheme.params.max_subset);
            // Re-read from the window: a previous embedding in this batch
            // may have altered overlapping items.
            self.before.clear();
            self.before.extend(
                trim.clone()
                    .map(|i| self.window.get(i).expect("in-window").value),
            );
            let bit = self.wm.bit(bit_idx);
            let Some(res) = self.encoder.embed_with(
                &self.scheme,
                &mut self.scratch,
                &self.before,
                e_pos - trim.start,
                &label,
                bit,
            ) else {
                self.stats.skipped_encoding += 1;
                continue;
            };
            self.stats.total_iterations += res.iterations;
            // Apply through the §4.4 undo log, then check constraints.
            let window_before = self.moments.clone();
            let mut undo = UndoLog::new();
            for (k, off) in trim.clone().enumerate() {
                let slot = self.window.get_mut(off).expect("in-window");
                undo.record(off, slot.value);
                self.moments.replace(slot.value, res.values[k]);
                slot.value = res.values[k];
            }
            let alt = ProposedAlteration {
                before: &self.before,
                after: &res.values,
                window_before: &window_before,
            };
            if self.constraints.iter().all(|c| c.allows(&alt)) {
                undo.commit();
                self.stats.embedded += 1;
            } else {
                let window = &mut self.window;
                undo.rollback(|off, old| {
                    window.get_mut(off).expect("in-window").value = old;
                });
                self.moments = window_before;
                self.stats.skipped_quality += 1;
            }
        }
        self.pending_advance = match last_major {
            Some(p) => p + 1,
            None => (len / 2).max(1),
        };
    }

    fn advance_after_batch(&mut self, out: &mut Vec<Sample>) {
        let n = self.pending_advance.max(1);
        let start = out.len();
        let emitted = self.window.advance_into(n, out);
        for s in &out[start..] {
            self.moments.remove(s.value);
        }
        self.stats.items_out += emitted as u64;
        self.pending_advance = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::initial::InitialEncoder;
    use crate::encoding::multihash::MultiHashEncoder;
    use crate::params::WmParams;
    use crate::quality::MaxItemChange;
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn test_params() -> WmParams {
        WmParams {
            window: 256,
            degree: 3,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            ..WmParams::default()
        }
    }

    fn scheme(p: WmParams) -> Scheme {
        Scheme::new(p, KeyedHash::md5(Key::from_u64(1234))).unwrap()
    }

    /// A smooth oscillating normalized stream with fat extremes.
    fn test_stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.35 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 17.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn preserves_stream_shape() {
        let (out, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        assert_eq!(out.len(), 2000);
        assert_eq!(stats.items_in, 2000);
        assert_eq!(stats.items_out, 2000);
        // Order and provenance intact.
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s.span.start, i as u64);
        }
    }

    #[test]
    fn embeds_into_selected_majors() {
        let (_, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(3000),
        )
        .unwrap();
        assert!(stats.majors_seen > 10, "{stats:?}");
        assert!(stats.selected > 0, "{stats:?}");
        assert!(stats.embedded > 0, "{stats:?}");
        assert!(stats.embedded <= stats.selected);
        let xi = stats.xi().unwrap();
        assert!((10.0..200.0).contains(&xi), "xi {xi}");
    }

    #[test]
    fn alterations_are_small() {
        let input = test_stream(2000);
        let (out, stats) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &input,
        )
        .unwrap();
        assert!(stats.embedded > 0);
        let mut max_change = 0.0f64;
        for (a, b) in out.iter().zip(&input) {
            max_change = max_change.max((a.value - b.value).abs());
        }
        // Initial encoding harmonizes within δ of the extreme.
        assert!(max_change <= 0.011, "max change {max_change}");
        assert!(max_change > 0.0, "something must have changed");
    }

    #[test]
    fn multihash_embedding_runs() {
        let p = WmParams {
            min_active: Some(4),
            ..test_params()
        };
        let (_, stats) = Embedder::embed_stream(
            scheme(p),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        assert!(stats.embedded > 0, "{stats:?}");
        assert!(stats.total_iterations >= stats.embedded);
    }

    #[test]
    fn quality_constraint_rolls_back() {
        let input = test_stream(2000);
        let s = scheme(test_params());
        let strict = Embedder::new(s.clone(), Arc::new(InitialEncoder), Watermark::single(true))
            .unwrap()
            .with_constraint(MaxItemChange { max: 0.0 }); // nothing allowed
        let mut e = strict;
        let mut out = Vec::new();
        for &smp in &input {
            out.extend(e.push(smp));
        }
        out.extend(e.finish());
        assert_eq!(e.stats().embedded, 0);
        assert!(e.stats().skipped_quality > 0);
        // Stream is bit-identical to the input — rollback worked.
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn permissive_constraint_does_not_block() {
        let (_, stats_free) = Embedder::embed_stream(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(2000),
        )
        .unwrap();
        let s = scheme(test_params());
        let mut e = Embedder::new(s, Arc::new(InitialEncoder), Watermark::single(true))
            .unwrap()
            .with_constraint(MaxItemChange { max: 1.0 });
        let input = test_stream(2000);
        for &smp in &input {
            e.push(smp);
        }
        e.finish();
        assert_eq!(e.stats().embedded, stats_free.embedded);
        assert_eq!(e.stats().skipped_quality, 0);
    }

    #[test]
    fn theta_must_exceed_watermark_length() {
        let p = WmParams {
            selection_modulus: 4,
            ..test_params()
        };
        let err = Embedder::new(
            scheme_unchecked(p),
            Arc::new(InitialEncoder),
            Watermark::from_bits(vec![true; 8]),
        );
        assert!(err.is_err());
    }

    fn scheme_unchecked(p: WmParams) -> Scheme {
        Scheme::new(p, KeyedHash::md5(Key::from_u64(0))).unwrap()
    }

    #[test]
    fn larger_theta_selects_fewer() {
        let mk = |theta: u64| {
            let p = WmParams {
                selection_modulus: theta,
                ..test_params()
            };
            Embedder::embed_stream(
                scheme(p),
                Arc::new(InitialEncoder),
                Watermark::single(true),
                &test_stream(4000),
            )
            .unwrap()
            .1
        };
        let dense = mk(2);
        let sparse = mk(16);
        assert!(
            sparse.selected < dense.selected,
            "θ=16 should select fewer: {} vs {}",
            sparse.selected,
            dense.selected
        );
    }

    #[test]
    #[should_panic(expected = "push after finish")]
    fn push_after_finish_panics() {
        let mut e = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        e.finish();
        e.push(Sample::new(0, 0.0));
    }

    #[test]
    fn stats_conservation() {
        let mut e = Embedder::new(
            scheme(test_params()),
            Arc::new(InitialEncoder),
            Watermark::single(true),
        )
        .unwrap();
        let input = test_stream(1000);
        let mut n_out = 0;
        for &s in &input {
            n_out += e.push(s).len();
        }
        n_out += e.finish().len();
        assert_eq!(n_out, 1000);
        assert_eq!(e.stats().items_in, 1000);
        assert_eq!(e.stats().items_out, 1000);
    }
}
