//! Fixed-point value codec: the bit view behind msb/lsb/bit operations.
//!
//! The paper manipulates stream values as bit strings — `msb(x, b)`,
//! `lsb(x, b)`, setting individual bit positions (§2.2, §3.2). Values are
//! normalized into (−0.5, +0.5); we represent them as signed fixed point
//! with `B = value_bits` fractional bits:
//!
//! ```text
//! raw = round(x · 2^B)      raw ∈ (−2^(B−1), +2^(B−1))
//! ```
//!
//! With B ≤ 48, `raw` (and sums of up to ~2^(51−B) raws) is exactly
//! representable in an f64 mantissa, so the f64 stream arithmetic the
//! attacks perform (averaging for summarization, in particular) commutes
//! exactly with quantization — the property the encodings rely on.

use crate::params::WmParams;

/// Codec for one `value_bits` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPointCodec {
    frac_bits: u32,
}

impl FixedPointCodec {
    /// Codec with `B = frac_bits` fractional bits (1..=48).
    pub fn new(frac_bits: u32) -> Self {
        assert!((1..=48).contains(&frac_bits), "frac_bits must be in [1,48]");
        FixedPointCodec { frac_bits }
    }

    /// Codec from a parameter set.
    pub fn from_params(p: &WmParams) -> Self {
        Self::new(p.value_bits)
    }

    /// B.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// One quantum, `2^−B`, in value units.
    pub fn quantum(&self) -> f64 {
        2f64.powi(-(self.frac_bits as i32))
    }

    /// Quantizes a value to its signed raw representation
    /// (round-half-away-from-zero, matching `f64::round`).
    pub fn quantize(&self, x: f64) -> i64 {
        debug_assert!(x.is_finite(), "cannot quantize non-finite value");
        (x * (1u64 << self.frac_bits) as f64).round() as i64
    }

    /// Inverse of [`quantize`](Self::quantize); exact for B ≤ 48.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Quantization round-trip: the canonical on-grid value nearest `x`.
    pub fn snap(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Magnitude of the raw representation (the bit string the paper's
    /// `msb(abs(val(·)), b)` reads).
    pub fn magnitude(&self, raw: i64) -> u64 {
        raw.unsigned_abs()
    }

    /// `msb(|x|, bits)`: the top `bits` of the B−1-bit magnitude field.
    ///
    /// Normalized values satisfy |x| < 0.5, i.e. magnitude < 2^(B−1), so
    /// the magnitude is treated as a (B−1)-bit field.
    pub fn msb_abs(&self, raw: i64, bits: u32) -> u64 {
        assert!(bits >= 1 && bits < self.frac_bits, "msb bits out of range");
        let width = self.frac_bits - 1;
        let mag = self.magnitude(raw) & ((1u64 << width) - 1);
        mag >> (width - bits)
    }

    /// `lsb(x, bits)`: the low `bits` of the two's-complement raw. Well
    /// defined for either sign and stable under sign-preserving msb
    /// alterations.
    pub fn lsb(&self, raw: i64, bits: u32) -> u64 {
        assert!((1..=63).contains(&bits), "lsb bits out of range");
        (raw as u64) & ((1u64 << bits) - 1)
    }

    /// Reads bit `pos` (0 = least significant) of the magnitude.
    pub fn get_bit(&self, raw: i64, pos: u32) -> bool {
        assert!(pos < self.frac_bits, "bit position out of range");
        (self.magnitude(raw) >> pos) & 1 == 1
    }

    /// Returns `raw` with magnitude bit `pos` forced to `bit`,
    /// sign preserved.
    pub fn set_bit(&self, raw: i64, pos: u32, bit: bool) -> i64 {
        assert!(pos < self.frac_bits, "bit position out of range");
        let mut mag = self.magnitude(raw);
        if bit {
            mag |= 1u64 << pos;
        } else {
            mag &= !(1u64 << pos);
        }
        let signed = mag as i64;
        if raw < 0 {
            -signed
        } else {
            signed
        }
    }

    /// Returns `raw` with its low `bits` magnitude bits replaced by
    /// `pattern` (masked), sign preserved. The multi-hash search's basic
    /// move.
    pub fn replace_lsb(&self, raw: i64, bits: u32, pattern: u64) -> i64 {
        assert!(bits >= 1 && bits < self.frac_bits, "lsb bits out of range");
        let mask = (1u64 << bits) - 1;
        let mag = (self.magnitude(raw) & !mask) | (pattern & mask);
        let signed = mag as i64;
        if raw < 0 {
            -signed
        } else {
            signed
        }
    }

    /// Returns `raw` with all magnitude bits *above* `pos` replaced by the
    /// corresponding bits of `template`'s magnitude, sign preserved.
    /// Used by the initial encoding to harmonize a characteristic subset's
    /// upper bits with its extreme so that averaging any sub-collection
    /// preserves the embedded pattern (see `encoding::initial`).
    pub fn copy_upper_bits(&self, raw: i64, template: i64, pos: u32) -> i64 {
        assert!(pos < self.frac_bits, "bit position out of range");
        let low_mask = (1u64 << (pos + 1)) - 1;
        let mag = (self.magnitude(template) & !low_mask) | (self.magnitude(raw) & low_mask);
        let signed = mag as i64;
        if raw < 0 {
            -signed
        } else {
            signed
        }
    }

    /// Quantized mean of a value slice: the *single* definition of m_ij
    /// both embedder and detector use (§4.3).
    ///
    /// The mean is computed in f64 (exactly how an attacker's
    /// summarization computes chunk averages) and then quantized, so a
    /// summarized stream reproduces the embedder's m_ij values bit-exactly
    /// wherever chunks align with the subset.
    pub fn quantize_mean(&self, values: &[f64]) -> i64 {
        assert!(!values.is_empty(), "mean of empty slice");
        let sum: f64 = values.iter().sum();
        self.quantize(sum / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> FixedPointCodec {
        FixedPointCodec::new(32)
    }

    #[test]
    fn quantize_roundtrip_exact_on_grid() {
        let c = codec();
        for raw in [-2_000_000_000i64, -1, 0, 1, 12345, (1 << 31) - 1] {
            assert_eq!(c.quantize(c.dequantize(raw)), raw);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let c = codec();
        let q = c.quantum();
        assert_eq!(c.quantize(10.4 * q), 10);
        assert_eq!(c.quantize(10.6 * q), 11);
        assert_eq!(c.quantize(-10.4 * q), -10);
        assert_eq!(c.quantize(-10.6 * q), -11);
        // Half rounds away from zero (f64::round).
        assert_eq!(c.quantize(10.5 * q), 11);
        assert_eq!(c.quantize(-10.5 * q), -11);
    }

    #[test]
    fn snap_error_bounded_by_half_quantum() {
        let c = codec();
        for i in 0..1000 {
            let x = (i as f64 * 0.000_737).sin() * 0.49;
            assert!((c.snap(x) - x).abs() <= c.quantum() / 2.0 + 1e-15);
        }
    }

    #[test]
    fn msb_abs_extracts_top_bits() {
        let c = codec();
        // magnitude field is B−1 = 31 bits wide.
        let raw = c.quantize(0.25); // |raw| = 2^30 → top bit of 31-bit field
        assert_eq!(c.msb_abs(raw, 1), 1);
        assert_eq!(c.msb_abs(raw, 3), 0b100);
        assert_eq!(c.msb_abs(-raw, 3), 0b100, "msb uses |value|");
        let small = c.quantize(0.01);
        assert_eq!(c.msb_abs(small, 3), 0);
    }

    #[test]
    fn msb_abs_stable_within_radius() {
        // The §3.2 assumption: values within δ < 2^-β of each other share
        // msb(·, β) — holds away from bucket boundaries.
        let c = codec();
        let beta = 3;
        let x = 0.30;
        let delta = 0.004;
        let a = c.msb_abs(c.quantize(x), beta);
        let b = c.msb_abs(c.quantize(x + delta), beta);
        let d = c.msb_abs(c.quantize(x - delta), beta);
        assert_eq!(a, b);
        assert_eq!(a, d);
    }

    #[test]
    fn lsb_of_negative_is_twos_complement() {
        let c = codec();
        assert_eq!(c.lsb(5, 4), 5);
        assert_eq!(c.lsb(-1, 4), 0xf);
        assert_eq!(c.lsb(-2, 8), 0xfe);
    }

    #[test]
    fn get_set_bit_roundtrip() {
        let c = codec();
        let raw = c.quantize(0.3);
        for pos in [0u32, 5, 14, 15] {
            let set = c.set_bit(raw, pos, true);
            assert!(c.get_bit(set, pos));
            let clr = c.set_bit(set, pos, false);
            assert!(!c.get_bit(clr, pos));
            // Other bits untouched.
            assert_eq!(c.set_bit(clr, pos, c.get_bit(raw, pos)), raw);
        }
    }

    #[test]
    fn set_bit_preserves_sign() {
        let c = codec();
        let raw = c.quantize(-0.3);
        let set = c.set_bit(raw, 7, true);
        assert!(set < 0);
        assert!(c.get_bit(set, 7));
    }

    #[test]
    fn set_bit_alteration_is_tiny() {
        let c = codec();
        let raw = c.quantize(0.3);
        let altered = c.set_bit(c.set_bit(c.set_bit(raw, 9, false), 8, true), 7, false);
        let diff = (c.dequantize(altered) - c.dequantize(raw)).abs();
        assert!(diff < 2f64.powi(-21), "alteration {diff} too large");
    }

    #[test]
    fn replace_lsb_masks_exactly() {
        let c = codec();
        let raw = c.quantize(0.123);
        let out = c.replace_lsb(raw, 16, 0xABCD);
        assert_eq!(c.lsb(out, 16), 0xABCD);
        // Upper magnitude bits unchanged.
        assert_eq!(c.magnitude(out) >> 16, c.magnitude(raw) >> 16);
        // Negative input keeps sign; magnitude lsb replaced.
        let n = c.replace_lsb(-raw, 16, 0x1234);
        assert!(n < 0);
        assert_eq!(c.magnitude(n) & 0xffff, 0x1234);
    }

    #[test]
    fn copy_upper_bits_harmonizes() {
        let c = codec();
        let a = c.quantize(0.300);
        let b = c.quantize(0.302);
        let h = c.copy_upper_bits(b, a, 16);
        // Above bit 16: equals a. At/below: equals b.
        assert_eq!(c.magnitude(h) >> 17, c.magnitude(a) >> 17);
        assert_eq!(c.magnitude(h) & 0x1ffff, c.magnitude(b) & 0x1ffff);
        // Alteration bounded by the original distance + low-band size.
        let diff = (c.dequantize(h) - c.dequantize(b)).abs();
        assert!(diff <= 0.002 + 2f64.powi(-15));
    }

    #[test]
    fn quantize_mean_matches_f64_average() {
        let c = codec();
        let vals: Vec<f64> = [0.1, 0.2, 0.3, 0.4].iter().map(|&v| c.snap(v)).collect();
        let mean = vals.iter().sum::<f64>() / 4.0;
        assert_eq!(c.quantize_mean(&vals), c.quantize(mean));
    }

    #[test]
    fn quantize_mean_commutes_with_summarization() {
        // mean(chunk means) == mean(all) when chunks are equal-sized: the
        // exactness property the multi-hash encoding needs.
        let c = codec();
        let vals: Vec<f64> = (0..12)
            .map(|i| c.snap(0.4 * ((i as f64) * 0.77).sin()))
            .collect();
        let direct = c.quantize_mean(&vals);
        let chunk_means: Vec<f64> = vals
            .chunks(3)
            .map(|ch| ch.iter().sum::<f64>() / ch.len() as f64)
            .collect();
        let nested = c.quantize_mean(&chunk_means);
        assert_eq!(direct, nested);
    }

    #[test]
    #[should_panic(expected = "mean of empty")]
    fn mean_of_empty_panics() {
        codec().quantize_mean(&[]);
    }

    #[test]
    fn small_codec_widths() {
        let c = FixedPointCodec::new(8);
        assert_eq!(c.quantum(), 1.0 / 256.0);
        let raw = c.quantize(0.25);
        assert_eq!(raw, 64);
        assert_eq!(c.msb_abs(raw, 2), 0b10);
    }
}
