//! On-the-fly quality assessment (§4.4).
//!
//! "Each data property that needs to be preserved is written as a
//! constraint on the allowable change to the dataset; the watermarking
//! process is then applied with these constraints as input and
//! re-evaluates them continuously for each alteration. An 'undo' log is
//! kept to allow undo operations in case certain constraints are violated
//! by the current watermarking step."
//!
//! Constraints are evaluated against the *current window only* — the
//! paper is explicit that the space bound `$` limits what quality metrics
//! can see.

use wms_math::SlidingMoments;

/// A proposed subset alteration, presented to constraints before it is
/// committed to the window.
#[derive(Debug, Clone, Copy)]
pub struct ProposedAlteration<'a> {
    /// Subset values before embedding.
    pub before: &'a [f64],
    /// Subset values after embedding (same length).
    pub after: &'a [f64],
    /// Moments of the current window *before* the alteration.
    pub window_before: &'a SlidingMoments,
}

impl<'a> ProposedAlteration<'a> {
    /// Window moments as they would be after committing the alteration.
    pub fn window_after(&self) -> SlidingMoments {
        let mut m = self.window_before.clone();
        for (&o, &n) in self.before.iter().zip(self.after) {
            m.replace(o, n);
        }
        m
    }

    /// Largest per-item absolute change.
    pub fn max_item_change(&self) -> f64 {
        self.before
            .iter()
            .zip(self.after)
            .map(|(&o, &n)| (n - o).abs())
            .fold(0.0, f64::max)
    }

    /// Sum of absolute changes over the subset.
    pub fn total_change(&self) -> f64 {
        self.before
            .iter()
            .zip(self.after)
            .map(|(&o, &n)| (n - o).abs())
            .sum()
    }
}

/// A data-quality predicate the embedder must not violate.
pub trait QualityConstraint: Send + Sync {
    /// Whether the proposed alteration is acceptable.
    fn allows(&self, alt: &ProposedAlteration<'_>) -> bool;

    /// Constraint name for reports.
    fn name(&self) -> String;
}

/// Caps the absolute change of any single item (the paper's footnote 4:
/// "the total alteration introduced per data item should not exceed a
/// certain threshold").
#[derive(Debug, Clone, Copy)]
pub struct MaxItemChange {
    /// Per-item absolute cap, in (normalized) value units.
    pub max: f64,
}

impl QualityConstraint for MaxItemChange {
    fn allows(&self, alt: &ProposedAlteration<'_>) -> bool {
        alt.max_item_change() <= self.max
    }

    fn name(&self) -> String {
        format!("max-item-change({})", self.max)
    }
}

/// Caps the summed absolute change per embedding step.
#[derive(Debug, Clone, Copy)]
pub struct MaxTotalChange {
    /// L1 cap over the altered subset.
    pub max: f64,
}

impl QualityConstraint for MaxTotalChange {
    fn allows(&self, alt: &ProposedAlteration<'_>) -> bool {
        alt.total_change() <= self.max
    }

    fn name(&self) -> String {
        format!("max-total-change({})", self.max)
    }
}

/// Caps the drift of the window mean caused by one embedding step.
#[derive(Debug, Clone, Copy)]
pub struct MaxMeanDrift {
    /// Allowed |Δ window-mean|.
    pub max: f64,
}

impl QualityConstraint for MaxMeanDrift {
    fn allows(&self, alt: &ProposedAlteration<'_>) -> bool {
        if alt.window_before.count() == 0 {
            return true;
        }
        let after = alt.window_after();
        (after.mean() - alt.window_before.mean()).abs() <= self.max
    }

    fn name(&self) -> String {
        format!("max-mean-drift({})", self.max)
    }
}

/// Caps the drift of the window standard deviation per embedding step.
#[derive(Debug, Clone, Copy)]
pub struct MaxStdDrift {
    /// Allowed |Δ window-std|.
    pub max: f64,
}

impl QualityConstraint for MaxStdDrift {
    fn allows(&self, alt: &ProposedAlteration<'_>) -> bool {
        if alt.window_before.count() == 0 {
            return true;
        }
        let after = alt.window_after();
        (after.std_dev() - alt.window_before.std_dev()).abs() <= self.max
    }

    fn name(&self) -> String {
        format!("max-std-drift({})", self.max)
    }
}

/// The rollback log of §4.4: records overwritten values so a constraint
/// violation can restore the window exactly.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    entries: Vec<(usize, f64)>,
}

impl UndoLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pre-alteration value at a window offset.
    pub fn record(&mut self, offset: usize, old_value: f64) {
        self.entries.push((offset, old_value));
    }

    /// Number of recorded alterations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restores all recorded values through the provided writer (applied
    /// in reverse order, so overlapping records unwind correctly), then
    /// clears the log.
    pub fn rollback(&mut self, mut write: impl FnMut(usize, f64)) {
        for &(offset, old) in self.entries.iter().rev() {
            write(offset, old);
        }
        self.entries.clear();
    }

    /// Discards the log (alteration committed).
    pub fn commit(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(values: &[f64]) -> SlidingMoments {
        let mut m = SlidingMoments::new();
        for &v in values {
            m.insert(v);
        }
        m
    }

    #[test]
    fn proposed_alteration_metrics() {
        let w = moments(&[1.0, 2.0, 3.0]);
        let alt = ProposedAlteration {
            before: &[2.0, 3.0],
            after: &[2.5, 2.8],
            window_before: &w,
        };
        assert!((alt.max_item_change() - 0.5).abs() < 1e-12);
        assert!((alt.total_change() - 0.7).abs() < 1e-12);
        let after = alt.window_after();
        assert!((after.mean() - (1.0 + 2.5 + 2.8) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_item_change_gates() {
        let w = moments(&[0.0]);
        let alt = ProposedAlteration {
            before: &[0.1, 0.2],
            after: &[0.1005, 0.2],
            window_before: &w,
        };
        assert!(MaxItemChange { max: 0.001 }.allows(&alt));
        assert!(!MaxItemChange { max: 0.0001 }.allows(&alt));
    }

    #[test]
    fn max_total_change_gates() {
        let w = moments(&[0.0]);
        let alt = ProposedAlteration {
            before: &[0.1, 0.2, 0.3],
            after: &[0.101, 0.201, 0.301],
            window_before: &w,
        };
        assert!(MaxTotalChange { max: 0.0031 }.allows(&alt));
        assert!(!MaxTotalChange { max: 0.0029 }.allows(&alt));
    }

    #[test]
    fn mean_drift_gates() {
        let w = moments(&[1.0, 1.0, 1.0, 1.0]);
        // Raising one of four items by 0.4 shifts the mean by 0.1.
        let alt = ProposedAlteration {
            before: &[1.0],
            after: &[1.4],
            window_before: &w,
        };
        assert!(MaxMeanDrift { max: 0.11 }.allows(&alt));
        assert!(!MaxMeanDrift { max: 0.09 }.allows(&alt));
    }

    #[test]
    fn std_drift_gates() {
        let w = moments(&[1.0, 1.0, 1.0, 1.0]);
        let alt = ProposedAlteration {
            before: &[1.0],
            after: &[2.0],
            window_before: &w,
        };
        // New std = sqrt(3)/4 ≈ 0.433.
        assert!(MaxStdDrift { max: 0.5 }.allows(&alt));
        assert!(!MaxStdDrift { max: 0.4 }.allows(&alt));
    }

    #[test]
    fn empty_window_constraints_are_permissive() {
        let w = SlidingMoments::new();
        let alt = ProposedAlteration {
            before: &[0.5],
            after: &[0.9],
            window_before: &w,
        };
        assert!(MaxMeanDrift { max: 0.0 }.allows(&alt));
        assert!(MaxStdDrift { max: 0.0 }.allows(&alt));
    }

    #[test]
    fn undo_log_rolls_back_in_reverse() {
        let mut values = vec![1.0, 2.0, 3.0];
        let mut log = UndoLog::new();
        // Two overlapping writes to offset 1.
        log.record(1, values[1]);
        values[1] = 9.0;
        log.record(1, values[1]);
        values[1] = 11.0;
        log.record(2, values[2]);
        values[2] = 7.0;
        assert_eq!(log.len(), 3);
        log.rollback(|o, v| values[o] = v);
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
        assert!(log.is_empty());
    }

    #[test]
    fn undo_log_commit_clears() {
        let mut log = UndoLog::new();
        log.record(0, 5.0);
        log.commit();
        assert!(log.is_empty());
        // A rollback after commit is a no-op.
        let mut touched = false;
        log.rollback(|_, _| touched = true);
        assert!(!touched);
    }

    #[test]
    fn constraint_names_are_descriptive() {
        assert!(MaxItemChange { max: 0.1 }.name().contains("0.1"));
        assert!(MaxMeanDrift { max: 0.2 }.name().contains("mean"));
        assert!(MaxStdDrift { max: 0.2 }.name().contains("std"));
        assert!(MaxTotalChange { max: 0.2 }.name().contains("total"));
    }
}
