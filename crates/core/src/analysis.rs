//! Closed-form analysis from §5: court-time convinceability, attack
//! vulnerability, and transform-survival bounds.
//!
//! These functions mirror the paper's formulas exactly; their unit tests
//! reproduce every worked example in the section (`P_fp(2s) ≈ 0`,
//! `P(15;10;21) ≈ 0.85 %`, `2^15 ≈ 32,000` search iterations, the 4.25 %
//! extra-data factor).

use wms_math::hypergeom;

/// Probability that a random stream extreme exhibits a *consistent*
/// one-bit encoding across all its `a(a+1)/2` m_ij averages:
/// `2^(−τ·a(a+1)/2)` (§5).
pub fn per_extreme_false_positive(a: u64, tau: u32) -> f64 {
    let pairs = (a * (a + 1) / 2) as f64;
    2f64.powf(-(tau as f64) * pairs)
}

/// Expected number of exhaustive-search candidates before the multi-hash
/// embedding succeeds: `2^(τ·a(a+1)/2)` (§4.3; Figure 11a's y-axis).
pub fn expected_search_iterations(a: u64, tau: u32) -> f64 {
    let pairs = (a * (a + 1) / 2) as f64;
    2f64.powf(tau as f64 * pairs)
}

/// Number of bit-carrying extremes observed in `t` seconds of stream at
/// rate ς with fluctuation ξ and selection modulus θ: `t·ς/(ξ·θ)` (§5).
pub fn carriers_in_time(t_seconds: f64, rate: f64, xi: f64, theta: f64) -> f64 {
    assert!(xi > 0.0 && theta > 0.0 && rate > 0.0);
    t_seconds * rate / (xi * theta)
}

/// `P_fp(t) = (2^(−τ·a(a+1)/2))^(t·ς/(ξ·θ))`: the probability that `t`
/// seconds of random data exhibit a consistent one-bit watermark (§5).
pub fn false_positive_after_time(
    t_seconds: f64,
    rate: f64,
    xi: f64,
    theta: f64,
    a: u64,
    tau: u32,
) -> f64 {
    per_extreme_false_positive(a, tau).powf(carriers_in_time(t_seconds, rate, xi, theta))
}

/// Detection confidence after `t` seconds: `1 − P_fp(t)`.
pub fn confidence_after_time(
    t_seconds: f64,
    rate: f64,
    xi: f64,
    theta: f64,
    a: u64,
    tau: u32,
) -> f64 {
    1.0 - false_positive_after_time(t_seconds, rate, xi, theta, a, tau)
}

/// The worst-case `P_fp(t)` when transforms leave only a single m_ij per
/// extreme (per-extreme probability drops to 1/2) — the paper's "one in a
/// million after two seconds" limit case.
pub fn false_positive_after_time_degraded(t_seconds: f64, rate: f64, xi: f64, theta: f64) -> f64 {
    0.5f64.powf(carriers_in_time(t_seconds, rate, xi, theta))
}

/// Number of m_ij averages destroyed when Mallory alters a fraction `a2`
/// of a subset of `a` items: `c_m = ½·a·a2·(2a − a·a2 + 1)` (§5).
pub fn altered_pair_count(a: u64, a2: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a2), "a2 is a fraction");
    let a = a as f64;
    0.5 * a * a2 * (2.0 * a - a * a2 + 1.0)
}

/// The encoding "weakening" per attacked extreme: the fraction of the
/// subset's m_ij values destroyed, `c_m · 2/(a(a+1))` (§5, analysis (i)).
pub fn weakening_per_attacked_extreme(a: u64, a2: f64) -> f64 {
    altered_pair_count(a, a2) * 2.0 / (a as f64 * (a as f64 + 1.0))
}

/// Probability that an attack altering `c_m` of the `a(a+1)/2` averages
/// obliterates **all** active ones (§5, analysis (ii)): the
/// hypergeometric `P(x+t; x; y)` with `y = a(a+1)/2`, `x = a4·y`,
/// `x+t = c_m`.
pub fn all_active_destroyed(a: u64, a2: f64, a4: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a4), "a4 is a fraction");
    let y = a * (a + 1) / 2;
    // Floor, matching the paper's worked example (a4=50 % of 21 → x=10).
    let x = (a4 * y as f64).floor() as u64;
    let cm = altered_pair_count(a, a2).round() as u64;
    if cm > y {
        return 1.0;
    }
    if x == 0 {
        return 1.0;
    }
    hypergeom::all_marked_drawn(cm, x, y)
}

/// The extra stream data needed to regain the original convinceability
/// under the §5 attack model, as a fraction. The paper works this as
/// `a1 · P(x+t; x; y)` ("≈ 4.25 % more data" for a1=5, a=6, a2=a4=50 %).
pub fn extra_data_fraction(a1: u64, a: u64, a2: f64, a4: f64) -> f64 {
    a1 as f64 * all_active_destroyed(a, a2, a4)
}

/// The effective selection modulus after the attack, `θ′ = θ + a1·P`
/// (§5): persuasiveness converges proportionally slower.
pub fn effective_theta(theta: f64, a1: u64, a: u64, a2: f64, a4: f64) -> f64 {
    theta + a1 as f64 * all_active_destroyed(a, a2, a4)
}

/// Minimum contiguous segment size enabling watermark recovery (§5's
/// segmentation analysis): enough data to warm the labeler —
/// `ξ(ν,δ) · λ · ϱ` items — plus the two consistent extremes.
pub fn min_segment_items(xi: f64, label_len: usize, label_stride: usize) -> f64 {
    assert!(xi > 0.0);
    xi * (label_len * label_stride + 2) as f64
}

/// Maximum sampling degree survived *by construction* (at least one subset
/// item survives): `ν_max = |σ(ε,δ)|` (§5).
pub fn guaranteed_sampling_degree(subset_size: usize) -> usize {
    subset_size
}

/// Maximum summarization degree survived by construction: a chunk of up
/// to `|σ(ε,δ)|` items lying inside the subset is one of the m_ij (§5).
pub fn guaranteed_summarization_degree(subset_size: usize) -> usize {
    subset_size
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rel(a: f64, b: f64, tol: f64) {
        let d = b.abs().max(1e-300);
        assert!((a - b).abs() / d <= tol, "{a} !~ {b}");
    }

    #[test]
    fn paper_example_search_cost() {
        // §4.3: "if τ = 1 and a = 5 we have 2^15, approx. 32,000
        // computations".
        assert_rel(expected_search_iterations(5, 1), 32_768.0, 1e-12);
        assert_rel(per_extreme_false_positive(5, 1), 1.0 / 32_768.0, 1e-12);
    }

    #[test]
    fn paper_example_pfp_two_seconds() {
        // §5: τ=1, a=5, ς=100Hz, θ=20% (carrier fraction 1/θ with θ=5),
        // ξ=50, t=2s → 2·100/(50·5)... The paper states the exponent is
        // 20 carriers: t·ς/(ξ·θ) with θ such that tς/(ξθ) = 20 →
        // θ = 0.2 (their "θ = 20%" is the carrier fraction).
        let carriers = carriers_in_time(2.0, 100.0, 50.0, 1.0 / 0.2);
        assert_rel(carriers, 0.8, 1e-12);
        // Their arithmetic treats it as 20 extremes × selection 20%... we
        // reproduce the headline numbers directly:
        let pfp = per_extreme_false_positive(5, 1).powf(20.0);
        assert!(pfp < 1e-80, "≈ 0 as the paper says (got {pfp})");
        // Degraded limit: only one m_ij per extreme survives → "one in a
        // million" for 20 carriers.
        let degraded = 0.5f64.powf(20.0);
        assert_rel(degraded, 1.0 / 1_048_576.0, 1e-12);
        let via_fn = false_positive_after_time_degraded(2.0, 100.0, 50.0, 0.2);
        assert_rel(via_fn, degraded, 1e-9);
    }

    #[test]
    fn paper_example_hypergeometric_attack() {
        // §5: a1=5, a=6, a4=50%, a2=50% → P(15;10;21) ≈ 0.85 %.
        let cm = altered_pair_count(6, 0.5);
        assert_rel(cm, 15.0, 1e-12);
        let p = all_active_destroyed(6, 0.5, 0.5);
        assert!((0.007..0.010).contains(&p), "P = {p}");
        // "...an average of a1·P ≈ 4.25 % more data".
        let extra = extra_data_fraction(5, 6, 0.5, 0.5);
        assert!((0.035..0.050).contains(&extra), "extra = {extra}");
    }

    #[test]
    fn effective_theta_grows() {
        let t = effective_theta(5.0, 5, 6, 0.5, 0.5);
        assert!(t > 5.0 && t < 5.1, "θ' = {t}");
    }

    #[test]
    fn weakening_bounds() {
        // No alteration → no weakening; full alteration → everything.
        assert_eq!(weakening_per_attacked_extreme(6, 0.0), 0.0);
        assert_rel(weakening_per_attacked_extreme(6, 1.0), 1.0, 1e-12);
        // Monotone in a2.
        let mut prev = -1.0;
        for i in 0..=10 {
            let w = weakening_per_attacked_extreme(6, i as f64 / 10.0);
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn pfp_decreases_with_time() {
        let mut prev = 1.0;
        for t in 1..=10 {
            let p = false_positive_after_time(t as f64, 100.0, 50.0, 5.0, 5, 1);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn confidence_converges_to_one() {
        let c = confidence_after_time(10.0, 100.0, 50.0, 5.0, 5, 1);
        assert!(c > 0.999_999);
    }

    #[test]
    fn min_segment_scales_with_label() {
        // Figure 10a context: ξ ~ 20–40 on the reference data with λϱ ≈ 8
        // → segments of a few hundred items start producing bias.
        let m = min_segment_items(40.0, 4, 2);
        assert_rel(m, 400.0, 1e-12);
        assert!(min_segment_items(40.0, 8, 2) > m);
    }

    #[test]
    fn guaranteed_degrees_match_subset_size() {
        assert_eq!(guaranteed_sampling_degree(6), 6);
        assert_eq!(guaranteed_summarization_degree(6), 6);
    }

    #[test]
    fn all_active_destroyed_edge_cases() {
        // Altering everything destroys everything.
        assert_rel(all_active_destroyed(6, 1.0, 0.5), 1.0, 1e-9);
        // Altering nothing destroys nothing (cm=0 < x).
        assert_eq!(all_active_destroyed(6, 0.0, 0.5), 0.0);
        // No active averages: vacuously destroyed.
        assert_eq!(all_active_destroyed(6, 0.2, 0.0), 1.0);
    }
}
