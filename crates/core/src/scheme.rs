//! Shared scheme context: the keyed-hash derivations both the embedder
//! and the detector must compute identically.
//!
//! * **Selection** (§3.2): extreme ε carries watermark bit `i` iff
//!   `H(msb(ε, β), k1) mod θ = i` and `i < b(wm)`. Only a fraction
//!   `b(wm)/θ` of major extremes are carriers, and Mallory — without k1 —
//!   cannot tell which (one-wayness).
//! * **Bit position** (§4.1): `bit = H(label(ε), k1) mod α`, mapped into
//!   `[1, α−1)` so the guard positions `bit±1` exist. Using the label, not
//!   ε's value, kills the location↔value correlation.
//! * **Convention code** (§4.3): `lsb(H(lsb(m_ij, γ) ; label(ε), k1), τ)`,
//!   compared against all-ones ("true") / all-zeros ("false").

use crate::fixedpoint::FixedPointCodec;
use crate::labeling::Label;
use crate::params::WmParams;
use wms_crypto::keyed::encode::{self, DOM_BITPOS, DOM_MULTIHASH, DOM_SELECT};
use wms_crypto::KeyedHash;

/// Everything needed to compute the scheme's keyed derivations.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// Parameter set (validated at construction).
    pub params: WmParams,
    /// Fixed-point codec for `params.value_bits`.
    pub codec: FixedPointCodec,
    /// The keyed one-way hash (k1 inside).
    pub hash: KeyedHash,
    /// Identity of this scheme's keyed derivations — see
    /// [`memo_fingerprint`](Self::memo_fingerprint). Private so it can
    /// only be produced consistently with `params`/`hash`, by
    /// [`Scheme::new`] or [`Scheme::with_hash`].
    memo_fingerprint: u64,
}

impl Scheme {
    /// Builds and validates a scheme context.
    pub fn new(params: WmParams, hash: KeyedHash) -> Result<Self, String> {
        params.validate()?;
        let memo_fingerprint = Self::fingerprint_of(&params, &hash);
        Ok(Scheme {
            params,
            codec: FixedPointCodec::from_params(&params),
            hash,
            memo_fingerprint,
        })
    }

    /// The same scheme driven through a different [`KeyedHash`] — the
    /// before/after benchmarking hook (e.g.
    /// [`KeyedHash::without_midstate`]). The memo fingerprint is
    /// recomputed from the new hash, so even a semantically different
    /// hash invalidates reused scratch state correctly.
    pub fn with_hash(&self, hash: KeyedHash) -> Scheme {
        Scheme {
            memo_fingerprint: Self::fingerprint_of(&self.params, &hash),
            hash,
            ..self.clone()
        }
    }

    /// Identity of this scheme's keyed derivations, precomputed so memo
    /// layers ([`crate::codetable::CodeTable`], the scratch
    /// `bit_position` cache) can detect at one `u64` compare per lookup
    /// that a *different* scheme is now driving them and invalidate.
    /// Covers the key, hash algorithm, and every parameter the memoized
    /// derivations read (τ, γ, α).
    pub fn memo_fingerprint(&self) -> u64 {
        self.memo_fingerprint
    }

    fn fingerprint_of(params: &WmParams, hash: &KeyedHash) -> u64 {
        hash.hash_u64_parts(&[
            b"wms/scheme-memo-fingerprint",
            &params.convention_bits.to_le_bytes(),
            &params.lsb_bits.to_le_bytes(),
            &params.embed_bits.to_le_bytes(),
        ])
    }

    /// `msb(|ε|, β)` — the selection hash input.
    pub fn select_msb(&self, raw: i64) -> u64 {
        self.codec.msb_abs(raw, self.params.select_msb_bits)
    }

    /// `msb(|ε|, β′)` — the labeling comparison value.
    pub fn label_msb(&self, raw: i64) -> u64 {
        self.codec.msb_abs(raw, self.params.label_msb_bits)
    }

    /// Selection criterion: returns the watermark bit index this extreme
    /// carries, or `None` if the extreme is not selected.
    pub fn select(&self, extreme_raw: i64, wm_len: usize) -> Option<usize> {
        let msb = self.select_msb(extreme_raw);
        let i = self.hash.hash_fields_mod(
            DOM_SELECT,
            &[&encode::u64_bytes(msb)],
            self.params.selection_modulus,
        );
        if (i as usize) < wm_len {
            Some(i as usize)
        } else {
            None
        }
    }

    /// Bit position for the initial encoding, in `[1, α−1)`.
    pub fn bit_position(&self, label: &Label) -> u32 {
        let alpha = self.params.embed_bits;
        debug_assert!(alpha >= 3);
        let i = self
            .hash
            .hash_fields_mod(DOM_BITPOS, &[&label.to_bytes()], (alpha - 2) as u64);
        1 + i as u32
    }

    /// τ-bit convention code of one m_ij average under a given label.
    pub fn convention_code(&self, m_raw: i64, label: &Label) -> u64 {
        self.convention_code_of_lsb(self.codec.lsb(m_raw, self.params.lsb_bits), label)
    }

    /// Convention code from an already-extracted `lsb(m, γ)` value — the
    /// entry point [`crate::codetable::CodeTable`] memoizes: the code
    /// depends on `m_raw` only through these γ bits.
    pub fn convention_code_of_lsb(&self, m_lsb: u64, label: &Label) -> u64 {
        self.hash.hash_fields_lsb(
            DOM_MULTIHASH,
            &[&encode::u64_bytes(m_lsb), &label.to_bytes()],
            self.params.convention_bits,
        )
    }

    /// Compiles the convention-code hash for one label: everything but
    /// the `lsb(m, γ)` field is fixed, so with a short key each code
    /// costs a single hash compression (see
    /// [`wms_crypto::CompiledU64Hash`]). Bit-identical to
    /// [`convention_code_of_lsb`](Self::convention_code_of_lsb).
    pub fn compile_convention_hasher(&self, label: &Label) -> wms_crypto::CompiledU64Hash {
        self.hash
            .compile_u64_message(DOM_MULTIHASH, &[&label.to_bytes()])
    }

    /// Code that encodes `bit`: all-ones for true, all-zeros for false.
    pub fn convention_target(&self, bit: bool) -> u64 {
        if bit {
            (1u64 << self.params.convention_bits) - 1
        } else {
            0
        }
    }

    /// Classifies a code: `Some(true)` / `Some(false)` / `None` (neither —
    /// only possible when τ ≥ 2).
    pub fn classify_code(&self, code: u64) -> Option<bool> {
        if code == self.convention_target(true) {
            Some(true)
        } else if code == self.convention_target(false) {
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_crypto::Key;

    fn scheme() -> Scheme {
        Scheme::new(WmParams::default(), KeyedHash::md5(Key::from_u64(42))).unwrap()
    }

    fn label() -> Label {
        Label::from_parts(0b1011, 4)
    }

    #[test]
    fn construction_validates_params() {
        let bad = WmParams {
            degree: 0,
            ..WmParams::default()
        };
        assert!(Scheme::new(bad, KeyedHash::md5(Key::from_u64(0))).is_err());
    }

    #[test]
    fn selection_is_deterministic_and_key_dependent() {
        let s = scheme();
        let raw = s.codec.quantize(0.3);
        assert_eq!(s.select(raw, 1), s.select(raw, 1));
        let other = Scheme::new(WmParams::default(), KeyedHash::md5(Key::from_u64(43))).unwrap();
        // Different keys must disagree on *some* extreme.
        let mut disagree = false;
        for i in 1..200 {
            let r = s.codec.quantize(0.45 * i as f64 / 200.0);
            if s.select(r, 1) != other.select(r, 1) {
                disagree = true;
                break;
            }
        }
        assert!(disagree, "independent keys should select differently");
    }

    #[test]
    fn selection_fraction_approximates_one_over_theta() {
        let p = WmParams {
            selection_modulus: 4,
            ..WmParams::default()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(7))).unwrap();
        let mut selected = 0;
        let n = 4000;
        for i in 0..n {
            // Spread raw values across the whole magnitude range.
            let raw = s.codec.quantize(0.499 * (i as f64 + 1.0) / n as f64);
            if s.select(raw, 1).is_some() {
                selected += 1;
            }
        }
        let frac = selected as f64 / n as f64;
        // wm_len/θ = 0.25. The hash input is msb(·, β=3) which has only 8
        // distinct values here, so granularity is coarse; just check the
        // mechanism gates a strict subset.
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn selection_index_below_wm_len() {
        let p = WmParams {
            selection_modulus: 64,
            ..WmParams::default()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(9))).unwrap();
        let wm_len = 8;
        for i in 0..500 {
            let raw = s.codec.quantize(0.499 * (i as f64 + 1.0) / 500.0);
            if let Some(idx) = s.select(raw, wm_len) {
                assert!(idx < wm_len);
            }
        }
    }

    #[test]
    fn selection_stable_within_radius() {
        // Items within δ of ε share msb(·, β), hence the same selection —
        // resilience to minor alterations (§3.2).
        let s = scheme();
        let raw_a = s.codec.quantize(0.303);
        let raw_b = s.codec.quantize(0.303 + 0.008);
        assert_eq!(s.select(raw_a, 1), s.select(raw_b, 1));
    }

    #[test]
    fn bit_position_in_guarded_band() {
        let s = scheme();
        let alpha = s.params.embed_bits;
        for bits in [0b10u64, 0b11, 0b101, 0b1111, 0b10101] {
            let len = 64 - bits.leading_zeros();
            let l = Label::from_parts(bits, len);
            let pos = s.bit_position(&l);
            assert!(pos >= 1 && pos < alpha - 1, "pos {pos}");
        }
    }

    #[test]
    fn bit_position_depends_on_label_not_value() {
        let s = scheme();
        let a = Label::from_parts(0b10, 2);
        let b = Label::from_parts(0b11, 2);
        // Two labels usually map to different positions; at minimum the
        // map must be a pure function of the label.
        assert_eq!(s.bit_position(&a), s.bit_position(&a));
        let mut differs = false;
        for bits in 2u64..40 {
            let l = Label::from_parts(bits | (1 << 6), 7);
            if s.bit_position(&l) != s.bit_position(&a) {
                differs = true;
            }
        }
        assert!(differs);
        let _ = b;
    }

    #[test]
    fn convention_code_width_and_targets() {
        let p = WmParams {
            convention_bits: 3,
            ..WmParams::default()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(1))).unwrap();
        assert_eq!(s.convention_target(true), 0b111);
        assert_eq!(s.convention_target(false), 0);
        for m in 0..200i64 {
            let code = s.convention_code(m, &label());
            assert!(code < 8);
            match s.classify_code(code) {
                Some(true) => assert_eq!(code, 0b111),
                Some(false) => assert_eq!(code, 0),
                None => assert!(code != 0 && code != 0b111),
            }
        }
    }

    #[test]
    fn convention_code_sensitive_to_label_and_lsb() {
        let s = scheme();
        let l1 = Label::from_parts(0b101, 3);
        let l2 = Label::from_parts(0b111, 3);
        let mut differs_label = 0;
        let mut differs_lsb = 0;
        let n = 256;
        for m in 0..n {
            if s.convention_code(m, &l1) != s.convention_code(m, &l2) {
                differs_label += 1;
            }
            if s.convention_code(m, &l1) != s.convention_code(m + 1, &l1) {
                differs_lsb += 1;
            }
        }
        // τ=1 → differing inputs disagree ~50% of the time.
        assert!(
            (n / 4..=3 * n / 4).contains(&differs_label),
            "{differs_label}"
        );
        assert!((n / 4..=3 * n / 4).contains(&differs_lsb), "{differs_lsb}");
    }

    #[test]
    fn tau_one_codes_always_classify() {
        let s = scheme(); // τ = 1
        for m in 0..100i64 {
            assert!(s.classify_code(s.convention_code(m, &label())).is_some());
        }
    }
}
