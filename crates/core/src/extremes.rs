//! Extremes, characteristic subsets, and major extremes (§2.2).
//!
//! * An **extreme** ε is a local minimum or maximum of the stream.
//! * Its **characteristic subset** σ(ε, δ) is the maximal contiguous run
//!   of items around ε whose values stay within distance δ of ε's value.
//! * A **major extreme of degree ν** is one whose subset is large enough
//!   (≥ ν items) that some member survives any uniform sampling of degree
//!   ν — the paper's recoverability requirement for bit carriers.
//! * ξ(ν, δ) is the average number of stream items per major extreme —
//!   the stream's "fluctuation rate", which drives every §5 formula.

use std::ops::Range;

/// Minimum or maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtremeKind {
    /// Local maximum.
    Max,
    /// Local minimum.
    Min,
}

/// A located extreme with its characteristic subset.
#[derive(Debug, Clone, PartialEq)]
pub struct Extreme {
    /// Position of ε in the scanned slice (plateaus: first item).
    pub pos: usize,
    /// ε's value.
    pub value: f64,
    /// Max or Min.
    pub kind: ExtremeKind,
    /// σ(ε, δ) as a half-open index range containing `pos`.
    pub subset: Range<usize>,
}

impl Extreme {
    /// |σ(ε, δ)|.
    pub fn subset_len(&self) -> usize {
        self.subset.end - self.subset.start
    }

    /// Major of degree ν ⇔ subset holds at least ν items.
    pub fn is_major(&self, degree: usize) -> bool {
        self.subset_len() >= degree
    }

    /// Whether the subset's right boundary was decided by the value
    /// criterion rather than running into the end of the scanned slice —
    /// i.e. the subset is complete and safe to embed into.
    pub fn right_bounded(&self, slice_len: usize) -> bool {
        self.subset.end < slice_len
    }
}

/// Compresses plateaus to (first index, value) runs, replacing `runs` —
/// the shared basis of [`extreme_positions`] and [`Scanner`].
fn compress_runs(values: &[f64], runs: &mut Vec<(usize, f64)>) {
    runs.clear();
    for (i, &v) in values.iter().enumerate() {
        match runs.last() {
            Some(&(_, lv)) if lv == v => {}
            _ => runs.push((i, v)),
        }
    }
}

/// Classifies interior run `w` against its neighbor runs (`w` must have
/// neighbors on both sides). Plateau compression guarantees adjacent run
/// values differ, so equality never ties.
fn run_extreme_kind(runs: &[(usize, f64)], w: usize) -> Option<ExtremeKind> {
    let prev = runs[w - 1].1;
    let cur = runs[w].1;
    let next = runs[w + 1].1;
    if cur > prev && cur > next {
        Some(ExtremeKind::Max)
    } else if cur < prev && cur < next {
        Some(ExtremeKind::Min)
    } else {
        None
    }
}

/// Positions of all local extremes (plateau-compressed; endpoints of the
/// slice are never extremes because their one-sidedness is unresolved).
pub fn extreme_positions(values: &[f64]) -> Vec<(usize, ExtremeKind)> {
    if values.len() < 3 {
        return Vec::new();
    }
    let mut runs: Vec<(usize, f64)> = Vec::new();
    compress_runs(values, &mut runs);
    let mut out = Vec::new();
    for w in 1..runs.len().saturating_sub(1) {
        if let Some(kind) = run_extreme_kind(&runs, w) {
            out.push((runs[w].0, kind));
        }
    }
    out
}

/// The characteristic subset σ(ε, δ) around `pos`: grows in both
/// directions while `|v − v[pos]| < δ`, stopping at the first violator
/// (contiguity rule of §2.2) or the slice boundary.
pub fn characteristic_subset(values: &[f64], pos: usize, radius: f64) -> Range<usize> {
    debug_assert!(pos < values.len());
    debug_assert!(radius > 0.0);
    let center = values[pos];
    let mut start = pos;
    while start > 0 && (values[start - 1] - center).abs() < radius {
        start -= 1;
    }
    let mut end = pos + 1;
    while end < values.len() && (values[end] - center).abs() < radius {
        end += 1;
    }
    start..end
}

/// All extremes of the slice with their subsets.
pub fn scan(values: &[f64], radius: f64) -> Vec<Extreme> {
    let mut out = Vec::new();
    Scanner::new().scan_into(values, radius, &mut out);
    out
}

/// Reusable scan state: one plateau-run compression of the slice, shared
/// by extreme location *and* characteristic-subset growth.
///
/// The free function [`scan`] recomputed [`characteristic_subset`] from
/// scratch per extreme — an item-by-item walk, O(window · subset) in the
/// worst case. Items inside one plateau run share a value, so a whole run
/// is inside σ(ε, δ) or entirely outside it; walking runs instead of
/// items bounds each subset walk by the run count and produces identical
/// ranges. Holding the runs in a long-lived `Scanner` also makes repeated
/// window scans allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Scanner {
    /// Plateau runs as (first index, value), rebuilt per scan.
    runs: Vec<(usize, f64)>,
}

impl Scanner {
    /// A scanner with empty buffers (allocated on first scan).
    pub fn new() -> Self {
        Scanner::default()
    }

    /// Scans `values`, replacing the contents of `out` with every extreme
    /// and its characteristic subset. Equivalent to [`scan`] but reuses
    /// both the caller's output vector and the internal run buffer.
    pub fn scan_into(&mut self, values: &[f64], radius: f64, out: &mut Vec<Extreme>) {
        out.clear();
        self.runs.clear();
        if values.len() < 3 {
            return;
        }
        compress_runs(values, &mut self.runs);
        for w in 1..self.runs.len().saturating_sub(1) {
            let Some(kind) = run_extreme_kind(&self.runs, w) else {
                continue;
            };
            let (pos, value) = self.runs[w];
            out.push(Extreme {
                pos,
                value,
                kind,
                subset: self.subset_of_run(w, values.len(), radius),
            });
        }
    }

    /// σ(ε, δ) for the extreme at run `run_idx`, grown run-by-run: a run
    /// is absorbed iff its value is within δ of the extreme's (identical
    /// to the item walk of [`characteristic_subset`], since every item of
    /// a run shares its value).
    fn subset_of_run(&self, run_idx: usize, slice_len: usize, radius: f64) -> Range<usize> {
        debug_assert!(radius > 0.0);
        let center = self.runs[run_idx].1;
        let mut lo = run_idx;
        while lo > 0 && (self.runs[lo - 1].1 - center).abs() < radius {
            lo -= 1;
        }
        let start = self.runs[lo].0;
        let mut hi = run_idx;
        while hi + 1 < self.runs.len() && (self.runs[hi + 1].1 - center).abs() < radius {
            hi += 1;
        }
        let end = if hi + 1 < self.runs.len() {
            self.runs[hi + 1].0
        } else {
            slice_len
        };
        start..end
    }
}

/// Only the major extremes of degree ν.
pub fn scan_major(values: &[f64], radius: f64, degree: usize) -> Vec<Extreme> {
    scan(values, radius)
        .into_iter()
        .filter(|e| e.is_major(degree))
        .collect()
}

/// Major extremes with *repeats collapsed*: in a flat peak region,
/// micro-noise produces a cluster of majors whose characteristic subsets
/// overlap — effectively the same extreme observed several times. This
/// keeps only the first major of each overlapping run (the direction the
/// paper's §4 "handling repeated labels" improvement points at).
///
/// Note: the embedding/detection pipeline deliberately does **not** use
/// this collapse — experiments showed the choice of cluster
/// representative is itself unstable under value alterations, which
/// shifts the label history *more* than the duplicates do. The function
/// is kept as measurement/analysis API.
pub fn scan_major_deduped(values: &[f64], radius: f64, degree: usize) -> Vec<Extreme> {
    let mut out: Vec<Extreme> = Vec::new();
    for e in scan_major(values, radius, degree) {
        match out.last() {
            Some(prev) if e.subset.start < prev.subset.end => {
                // Overlaps the previous cluster: same physical extreme.
            }
            _ => out.push(e),
        }
    }
    out
}

/// ξ(ν, δ): average items per major extreme. `None` when the slice
/// contains no major extreme.
pub fn measure_xi(values: &[f64], radius: f64, degree: usize) -> Option<f64> {
    let majors = scan_major(values, radius, degree).len();
    if majors == 0 {
        None
    } else {
        Some(values.len() as f64 / majors as f64)
    }
}

/// Average characteristic-subset size over all extremes — the statistic
/// the transform-degree estimator compares between the original stream
/// and a transformed segment (§4.2).
pub fn avg_subset_size(values: &[f64], radius: f64) -> Option<f64> {
    let ex = scan(values, radius);
    if ex.is_empty() {
        return None;
    }
    Some(ex.iter().map(|e| e.subset_len() as f64).sum::<f64>() / ex.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_extremes() {
        //            0    1    2    3    4    5    6
        let v = [0.0, 1.0, 0.5, 0.8, 0.2, 0.9, 0.1];
        let pos = extreme_positions(&v);
        assert_eq!(
            pos,
            vec![
                (1, ExtremeKind::Max),
                (2, ExtremeKind::Min),
                (3, ExtremeKind::Max),
                (4, ExtremeKind::Min),
                (5, ExtremeKind::Max),
            ]
        );
    }

    #[test]
    fn endpoints_never_extremes() {
        let v = [5.0, 1.0, 4.0];
        let pos = extreme_positions(&v);
        assert_eq!(pos, vec![(1, ExtremeKind::Min)]);
    }

    #[test]
    fn plateaus_compress_to_first_index() {
        let v = [0.0, 2.0, 2.0, 2.0, 1.0, 1.0, 3.0, 0.0];
        let pos = extreme_positions(&v);
        assert_eq!(
            pos,
            vec![
                (1, ExtremeKind::Max),
                (4, ExtremeKind::Min),
                (6, ExtremeKind::Max),
            ]
        );
    }

    #[test]
    fn monotone_has_no_extremes() {
        let up: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(extreme_positions(&up).is_empty());
        assert!(extreme_positions(&[1.0, 2.0]).is_empty());
        assert!(extreme_positions(&[]).is_empty());
    }

    #[test]
    fn subset_respects_radius_and_contiguity() {
        //       0     1     2     3     4     5      6
        let v = [0.50, 0.92, 0.95, 1.00, 0.97, 0.60, 0.99];
        // extreme at 3; δ=0.1 → left: 0.97? no that's right...
        // left: v[2]=0.95 (|1.00-0.95|=0.05<0.1) → v[1]=0.92 (0.08<0.1)
        //       → v[0]=0.50 stops.
        // right: v[4]=0.97 ok → v[5]=0.60 stops (contiguity: v[6]=0.99 is
        //        within δ but unreachable).
        let r = characteristic_subset(&v, 3, 0.1);
        assert_eq!(r, 1..5);
    }

    #[test]
    fn subset_always_contains_extreme() {
        let v = [1.0, 0.0, 1.0];
        let r = characteristic_subset(&v, 1, 1e-9);
        assert_eq!(r, 1..2);
    }

    #[test]
    fn subset_bounded_by_slice() {
        let v = [1.0, 1.001, 1.002];
        let r = characteristic_subset(&v, 0, 0.1);
        assert_eq!(r, 0..3);
    }

    #[test]
    fn scan_pairs_positions_with_subsets() {
        let v = [0.0, 0.10, 0.11, 0.12, 0.11, 0.10, 0.0];
        let ex = scan(&v, 0.05);
        assert_eq!(ex.len(), 1);
        let e = &ex[0];
        assert_eq!(e.pos, 3);
        assert_eq!(e.kind, ExtremeKind::Max);
        assert_eq!(e.subset, 1..6);
        assert_eq!(e.subset_len(), 5);
        assert!(e.is_major(5));
        assert!(!e.is_major(6));
        assert!(e.right_bounded(v.len()));
    }

    #[test]
    fn fat_vs_thin_extremes() {
        // A smooth hump is major; a one-sample spike is not (cf. Figure 2:
        // C, E, G fat; F, I, J thin).
        let mut v = Vec::new();
        for i in 0..21 {
            let t = (i as f64 - 10.0) / 10.0;
            v.push(0.3 - 0.02 * t * t); // gentle hump, spread ≈ 0.02
        }
        v.extend_from_slice(&[0.0, 0.45, 0.0]); // sharp spike
        v.push(0.1);
        let majors = scan_major(&v, 0.01, 5);
        assert_eq!(majors.len(), 1, "only the hump is major: {majors:?}");
        assert_eq!(majors[0].kind, ExtremeKind::Max);
        let all = scan(&v, 0.01);
        assert!(all.len() >= 2, "spike still counts as an extreme");
    }

    #[test]
    fn xi_measures_fluctuation() {
        // Sine of period 100 over 10k samples → ~200 extremes; with a tiny
        // radius every extreme has a small subset; pick ν=1 to count all.
        let v: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * core::f64::consts::TAU / 100.0).sin() * 0.4)
            .collect();
        let xi = measure_xi(&v, 0.01, 1).unwrap();
        assert!((40.0..60.0).contains(&xi), "xi = {xi}");
        assert!(measure_xi(&v, 0.01, 1000).is_none());
    }

    #[test]
    fn avg_subset_size_shrinks_under_decimation() {
        // §4.2's core premise: sampling a stream shrinks subsets.
        let v: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * core::f64::consts::TAU / 200.0).sin() * 0.4)
            .collect();
        let full = avg_subset_size(&v, 0.01).unwrap();
        let dec: Vec<f64> = v.iter().step_by(4).copied().collect();
        let sampled = avg_subset_size(&dec, 0.01).unwrap();
        let ratio = full / sampled;
        assert!(
            (2.0..8.0).contains(&ratio),
            "expected ~4x shrink, got {ratio} ({full} vs {sampled})"
        );
    }

    #[test]
    fn dedup_collapses_overlapping_majors() {
        // A flat-topped hump with a micro-dimple: two majors with
        // overlapping subsets collapse to one.
        let mut v = vec![0.0, 0.1, 0.2];
        v.extend_from_slice(&[0.300, 0.3005, 0.3002, 0.3006, 0.300]);
        v.extend_from_slice(&[0.2, 0.1, 0.0]);
        let majors = scan_major(&v, 0.01, 3);
        assert!(
            majors.len() >= 2,
            "construction should yield a cluster: {majors:?}"
        );
        let deduped = scan_major_deduped(&v, 0.01, 3);
        assert_eq!(deduped.len(), 1, "{deduped:?}");
        // Non-overlapping majors are untouched: add a second wide hump.
        let mut two = v.clone();
        two.extend_from_slice(&[-0.299, -0.3004, -0.3001, -0.3005, -0.299, 0.0]);
        let d2 = scan_major_deduped(&two, 0.01, 3);
        assert!(d2.len() >= 2, "{d2:?}");
    }

    #[test]
    fn scan_handles_tiny_slices() {
        assert!(scan(&[], 0.1).is_empty());
        assert!(scan(&[1.0], 0.1).is_empty());
        assert!(scan(&[1.0, 2.0], 0.1).is_empty());
    }

    /// The naive item-walk scan the run-based [`Scanner`] replaced.
    fn scan_naive(values: &[f64], radius: f64) -> Vec<Extreme> {
        extreme_positions(values)
            .into_iter()
            .map(|(pos, kind)| Extreme {
                pos,
                value: values[pos],
                kind,
                subset: characteristic_subset(values, pos, radius),
            })
            .collect()
    }

    #[test]
    fn run_based_scan_matches_item_walk() {
        // Smooth, noisy, plateau-rich, and quantized streams; the
        // run-walk must reproduce the item-walk exactly.
        let mut streams: Vec<Vec<f64>> = Vec::new();
        streams.push(
            (0..500)
                .map(|i| (i as f64 * core::f64::consts::TAU / 37.0).sin() * 0.4)
                .collect(),
        );
        let mut rng = wms_math::DetRng::seed_from_u64(77);
        streams.push((0..500).map(|_| rng.uniform(-0.4, 0.4)).collect());
        // Heavy plateaus: quantize to a coarse grid.
        streams.push(
            (0..500)
                .map(|i| ((i as f64 * 0.21).sin() * 8.0).round() / 20.0)
                .collect(),
        );
        let mut scanner = Scanner::new();
        let mut got = Vec::new();
        for (si, v) in streams.iter().enumerate() {
            for radius in [1e-6, 0.01, 0.05, 0.3] {
                let want = scan_naive(v, radius);
                scanner.scan_into(v, radius, &mut got);
                assert_eq!(got, want, "stream {si} radius {radius}");
                assert_eq!(scan(v, radius), want, "free fn, stream {si}");
            }
        }
    }

    #[test]
    fn scan_into_reuses_and_clears_output() {
        let v: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).sin() * 0.3).collect();
        let mut scanner = Scanner::new();
        let mut out = Vec::new();
        scanner.scan_into(&v, 0.01, &mut out);
        let first = out.clone();
        assert!(!first.is_empty());
        scanner.scan_into(&v, 0.01, &mut out);
        assert_eq!(out, first, "second scan must replace, not append");
        scanner.scan_into(&[], 0.01, &mut out);
        assert!(out.is_empty());
    }
}
