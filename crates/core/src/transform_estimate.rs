//! Transform-degree estimation and label reconstruction support (§4.2).
//!
//! After Mallory samples or summarizes the stream, "major extreme of
//! degree ν and radius δ" no longer means what it meant on the original:
//! a major extreme of degree ν in the original becomes one of degree ν/χ
//! in a χ-degree transformed stream. Detection therefore needs χ. Two
//! routes, both from the paper:
//!
//! 1. **Rate ratio** — with steady data rates, χ = ς/ς′.
//! 2. **Subset shrinkage** — keep one number from embedding time (the
//!    average characteristic-subset size at radius δ) and divide it by
//!    the same statistic measured on the received segment.

use crate::extremes;
use crate::params::WmParams;

/// The reference statistics preserved from the original (watermarked)
/// stream — the "information about the initial stream" of §4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamFingerprint {
    /// Average characteristic-subset size over all extremes, at `radius`.
    pub avg_subset_size: f64,
    /// Average characteristic-subset size over the *fattest* extremes —
    /// the top `major_fraction` by subset size. Thin subsets bottom out
    /// at 1 item under heavy transforms, so the overall mean saturates;
    /// the fat quantile keeps shrinking measurably.
    pub major_avg_subset: f64,
    /// Fraction of extremes counted into `major_avg_subset`.
    pub major_fraction: f64,
    /// δ the statistics were measured at.
    pub radius: f64,
    /// ξ(ν, δ) of the original stream (informational).
    pub xi: Option<f64>,
}

/// Mean subset size of the top `fraction` fattest extremes.
fn top_quantile_avg(values: &[f64], radius: f64, fraction: f64) -> Option<f64> {
    let mut sizes: Vec<usize> = extremes::scan(values, radius)
        .iter()
        .map(|e| e.subset_len())
        .collect();
    if sizes.is_empty() {
        return None;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((sizes.len() as f64 * fraction).ceil() as usize).clamp(1, sizes.len());
    Some(sizes[..k].iter().sum::<usize>() as f64 / k as f64)
}

/// Measures the fingerprint of a (typically freshly watermarked) stream.
/// Returns `None` when the stream has no extremes at this radius.
pub fn fingerprint(values: &[f64], params: &WmParams) -> Option<StreamFingerprint> {
    let avg = extremes::avg_subset_size(values, params.radius)?;
    let all = extremes::scan(values, params.radius);
    let majors = all.iter().filter(|e| e.is_major(params.degree)).count();
    // Track the same share of fattest extremes that were major at embed
    // time (floored so the statistic never degenerates to a single max).
    let major_fraction = (majors as f64 / all.len() as f64).max(0.02);
    let major_avg = top_quantile_avg(values, params.radius, major_fraction)?;
    Some(StreamFingerprint {
        avg_subset_size: avg,
        major_avg_subset: major_avg,
        major_fraction,
        radius: params.radius,
        xi: extremes::measure_xi(values, params.radius, params.degree),
    })
}

/// Estimates the transform degree χ of an observed segment against a
/// reference fingerprint: the ratio by which the fat-quantile subsets
/// shrank, floored at 1 (a stream cannot be "less than untransformed").
pub fn estimate_degree(reference: &StreamFingerprint, observed: &[f64]) -> Option<f64> {
    let now = top_quantile_avg(observed, reference.radius, reference.major_fraction)?;
    if now <= 0.0 {
        return None;
    }
    Some((reference.major_avg_subset / now).max(1.0))
}

/// ν′ = max(1, ⌈ν / χ⌉): the adjusted major-extreme degree detection must
/// use on a χ-transformed stream.
///
/// Rounding *up* matters: the embed-time major set is `subset ≥ ν`; after
/// a χ-degree transform those subsets shrink to ≥ ν/χ. A detection
/// threshold below ⌈ν/χ⌉ admits extremes that were *not* major at embed
/// time, polluting the label sequence and with it every downstream hash.
pub fn adjusted_degree(nu: usize, chi: f64) -> usize {
    assert!(chi >= 1.0, "transform degree must be >= 1");
    ((nu as f64 / chi).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.4 * (i as f64 * core::f64::consts::TAU / 300.0).sin())
            .collect()
    }

    fn params() -> WmParams {
        WmParams {
            radius: 0.01,
            degree: 3,
            ..WmParams::default()
        }
    }

    #[test]
    fn fingerprint_measures_subset_stats() {
        let v = smooth_stream(10_000);
        let fp = fingerprint(&v, &params()).unwrap();
        assert!(fp.avg_subset_size > 3.0, "{fp:?}");
        assert_eq!(fp.radius, 0.01);
        assert!(fp.xi.unwrap() > 50.0);
    }

    #[test]
    fn untransformed_stream_estimates_chi_one() {
        let v = smooth_stream(10_000);
        let fp = fingerprint(&v, &params()).unwrap();
        let chi = estimate_degree(&fp, &v).unwrap();
        assert!((chi - 1.0).abs() < 0.05, "chi {chi}");
    }

    #[test]
    fn decimated_stream_estimates_its_degree() {
        let v = smooth_stream(20_000);
        let fp = fingerprint(&v, &params()).unwrap();
        for k in [2usize, 4] {
            let dec: Vec<f64> = v.iter().step_by(k).copied().collect();
            let chi = estimate_degree(&fp, &dec).unwrap();
            let rel = (chi - k as f64).abs() / k as f64;
            assert!(rel < 0.45, "degree {k}: estimated {chi}");
        }
    }

    #[test]
    fn summarized_stream_estimates_its_degree() {
        let v = smooth_stream(20_000);
        let fp = fingerprint(&v, &params()).unwrap();
        let chunk = 4usize;
        let summarized: Vec<f64> = v
            .chunks(chunk)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let chi = estimate_degree(&fp, &summarized).unwrap();
        let rel = (chi - chunk as f64).abs() / chunk as f64;
        assert!(
            rel < 0.45,
            "estimated {chi} for summarization degree {chunk}"
        );
    }

    #[test]
    fn estimate_is_floored_at_one() {
        // An "observed" stream fatter than the reference clamps to 1.
        let v = smooth_stream(10_000);
        let mut fp = fingerprint(&v, &params()).unwrap();
        fp.major_avg_subset = 0.5; // pretend the original was very thin
        assert_eq!(estimate_degree(&fp, &v).unwrap(), 1.0);
    }

    #[test]
    fn adjusted_degree_ceils_and_floors() {
        assert_eq!(adjusted_degree(6, 1.0), 6);
        assert_eq!(adjusted_degree(6, 2.0), 3);
        assert_eq!(adjusted_degree(6, 2.6), 3);
        assert_eq!(adjusted_degree(6, 10.0), 1);
        assert_eq!(adjusted_degree(1, 3.0), 1);
        assert_eq!(adjusted_degree(10, 3.0), 4);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn adjusted_degree_rejects_sub_one() {
        adjusted_degree(3, 0.5);
    }

    #[test]
    fn fingerprint_none_without_extremes() {
        let flat = vec![0.1; 100];
        assert!(fingerprint(&flat, &params()).is_none());
    }
}
