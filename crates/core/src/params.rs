//! Watermarking parameters (the paper's greek-letter configuration).
//!
//! | Paper | Field | Meaning |
//! |---|---|---|
//! | b(x) | `value_bits` (B) | bits of the fixed-point value representation |
//! | β | `select_msb_bits` | most-significant bits hashed by the selection criterion |
//! | α | `embed_bits` | low bit-band available to the initial encoding's bit position |
//! | γ | `lsb_bits` | least-significant bits hashed/altered by the multi-hash encoding |
//! | τ | `convention_bits` | digest bits that must be all-ones/all-zeros per m_ij |
//! | δ | `radius` | characteristic-subset value radius (normalized units) |
//! | ν | `degree` | sampling degree a major extreme must survive (min subset size) |
//! | θ | `selection_modulus` | hash modulus; fraction b(wm)/θ of major extremes carry bits |
//! | λ | `label_len` | number of comparison bits in an extreme's label |
//! | ϱ | `label_stride` | extreme stride between label comparisons |
//! | κ | `decision_margin` | bucket-difference threshold in `wm_construct` |
//! | $ | `window` | processing window capacity |
//!
//! §6 of the paper fixes β = 3, α = 16, γ = 16, ϱ = 2 for the experiments;
//! those are the defaults here.

/// Full parameter set shared by embedder and detector.
///
/// β, α, γ, τ, δ, ν, θ, λ, ϱ and the key are *secret* (known to the rights
/// holder only); Mallory sees none of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WmParams {
    /// B — fractional bits of the fixed-point codec.
    pub value_bits: u32,
    /// β — msb bits used by the selection criterion.
    pub select_msb_bits: u32,
    /// β′ — msb bits compared by the labeling scheme (§4.1). Coarse
    /// comparisons (2–3 bits) shrug off value alterations, so labels —
    /// and with them every keyed derivation — survive ε-attacks; finer
    /// widths buy label entropy at the price of fragility (Figure 6a's
    /// trade-off).
    pub label_msb_bits: u32,
    /// α — size of the low bit-band for the initial encoding.
    pub embed_bits: u32,
    /// γ — lsb bits hashed and altered by the multi-hash encoding.
    pub lsb_bits: u32,
    /// τ — digest bits per m_ij in the encoding convention.
    pub convention_bits: u32,
    /// δ — characteristic-subset radius, in normalized value units.
    pub radius: f64,
    /// ν — degree: minimum characteristic-subset size of a major extreme.
    pub degree: usize,
    /// θ — selection modulus (`> b(wm)`).
    pub selection_modulus: u64,
    /// λ — label length in comparison bits.
    pub label_len: usize,
    /// ϱ — label stride.
    pub label_stride: usize,
    /// κ — majority-voting decision margin.
    pub decision_margin: u64,
    /// $ — window capacity.
    pub window: usize,
    /// Multi-hash search: required number of satisfying m_ij averages
    /// (`None` = all of them — the full convention of §4.3).
    pub min_active: Option<usize>,
    /// Multi-hash search iteration budget per extreme.
    pub max_iterations: u64,
    /// Cap on the number of characteristic-subset items handed to the
    /// encoder (the paper notes exhaustive search beyond 8–10 items is
    /// infeasible, §4.3). Items nearest the extreme are kept.
    pub max_subset: usize,
}

impl Default for WmParams {
    fn default() -> Self {
        WmParams {
            value_bits: 32,
            select_msb_bits: 3,
            label_msb_bits: 3,
            embed_bits: 16,
            lsb_bits: 16,
            convention_bits: 1,
            radius: 0.01,
            degree: 3,
            selection_modulus: 2,
            label_len: 10,
            label_stride: 2,
            decision_margin: 1,
            window: 2048,
            min_active: None,
            max_iterations: 1 << 22,
            max_subset: 5,
        }
    }
}

impl WmParams {
    /// Validates internal consistency; returns a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let p = self;
        if p.value_bits == 0 || p.value_bits > 48 {
            return Err(format!(
                "value_bits must be in [1,48] so f64 round-trips are exact, got {}",
                p.value_bits
            ));
        }
        if p.select_msb_bits == 0 || p.select_msb_bits >= p.value_bits {
            return Err("select_msb_bits (β) must be in [1, value_bits)".into());
        }
        if p.label_msb_bits == 0 || p.label_msb_bits >= p.value_bits {
            return Err("label_msb_bits (β′) must be in [1, value_bits)".into());
        }
        // β + α ≤ b(x), §3.2.
        if p.select_msb_bits + p.embed_bits > p.value_bits {
            return Err(format!(
                "β + α must not exceed b(x): {} + {} > {}",
                p.select_msb_bits, p.embed_bits, p.value_bits
            ));
        }
        if p.embed_bits < 3 {
            return Err("embed_bits (α) must be >= 3 to fit bit±1 guards".into());
        }
        if p.lsb_bits == 0 || p.lsb_bits >= p.value_bits {
            return Err("lsb_bits (γ) must be in [1, value_bits)".into());
        }
        if p.convention_bits == 0 || p.convention_bits > 16 {
            return Err("convention_bits (τ) must be in [1,16]".into());
        }
        if !(p.radius > 0.0 && p.radius < 1.0) {
            return Err("radius (δ) must be in (0,1)".into());
        }
        // δ < 2^(b(x)−β) in raw units, i.e. δ < 2^(−β) in value units:
        // every subset member shares the extreme's top β bits (§3.2).
        let max_radius = 2f64.powi(-(p.select_msb_bits as i32));
        if p.radius >= max_radius {
            return Err(format!(
                "radius δ={} too large for β={}: must be < {max_radius}",
                p.radius, p.select_msb_bits
            ));
        }
        if p.degree == 0 {
            return Err("degree (ν) must be >= 1".into());
        }
        if p.selection_modulus == 0 {
            return Err("selection_modulus (θ) must be >= 1".into());
        }
        if p.label_len == 0 || p.label_len > 60 {
            return Err("label_len (λ) must be in [1,60] (fits one u64 with the lead bit)".into());
        }
        if p.label_stride == 0 {
            return Err("label_stride (ϱ) must be >= 1".into());
        }
        if p.window < 2 * p.degree + 2 {
            return Err("window ($) too small to ever hold a major extreme's subset".into());
        }
        if let Some(a) = p.min_active {
            if a == 0 {
                return Err("min_active must be >= 1 when set".into());
            }
        }
        if p.max_iterations == 0 {
            return Err("max_iterations must be >= 1".into());
        }
        if p.max_subset == 0 {
            return Err("max_subset must be >= 1".into());
        }
        Ok(())
    }

    /// Checks that the selection modulus can address every bit of a
    /// watermark of length `wm_len` (θ > b(wm), §3.2).
    pub fn validate_for_watermark(&self, wm_len: usize) -> Result<(), String> {
        self.validate()?;
        if (self.selection_modulus as usize) < wm_len + 1 {
            return Err(format!(
                "selection_modulus θ={} must exceed watermark length {}",
                self.selection_modulus, wm_len
            ));
        }
        Ok(())
    }

    /// The fraction of major extremes selected as bit carriers,
    /// `b(wm)/θ` (§3.2).
    pub fn carrier_fraction(&self, wm_len: usize) -> f64 {
        wm_len as f64 / self.selection_modulus as f64
    }

    /// Builder-style override helpers (used heavily by the experiment
    /// harness sweeps).
    pub fn with_radius(mut self, radius: f64) -> Self {
        self.radius = radius;
        self
    }

    /// Overrides ν.
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }

    /// Overrides θ.
    pub fn with_selection_modulus(mut self, theta: u64) -> Self {
        self.selection_modulus = theta;
        self
    }

    /// Overrides λ.
    pub fn with_label_len(mut self, lambda: usize) -> Self {
        self.label_len = lambda;
        self
    }

    /// Overrides τ.
    pub fn with_convention_bits(mut self, tau: u32) -> Self {
        self.convention_bits = tau;
        self
    }

    /// Overrides the multi-hash active-average requirement.
    pub fn with_min_active(mut self, min_active: Option<usize>) -> Self {
        self.min_active = min_active;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let p = WmParams::default();
        p.validate().expect("defaults must validate");
        assert_eq!(p.select_msb_bits, 3); // β = 3
        assert_eq!(p.embed_bits, 16); // α = 16
        assert_eq!(p.lsb_bits, 16); // γ = 16
        assert_eq!(p.label_stride, 2); // ϱ = 2
    }

    #[test]
    fn beta_alpha_budget_enforced() {
        let p = WmParams {
            select_msb_bits: 20,
            embed_bits: 20,
            ..WmParams::default()
        };
        let err = p.validate().unwrap_err();
        assert!(err.contains("β + α"), "{err}");
    }

    #[test]
    fn radius_vs_beta_constraint() {
        // β=3 ⇒ δ must be < 2^-3 = 0.125.
        let ok = WmParams {
            radius: 0.12,
            ..WmParams::default()
        };
        ok.validate().unwrap();
        let bad = WmParams {
            radius: 0.2,
            ..WmParams::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_values() {
        for p in [
            WmParams {
                degree: 0,
                ..WmParams::default()
            },
            WmParams {
                selection_modulus: 0,
                ..WmParams::default()
            },
            WmParams {
                label_len: 0,
                ..WmParams::default()
            },
            WmParams {
                label_stride: 0,
                ..WmParams::default()
            },
            WmParams {
                embed_bits: 2,
                ..WmParams::default()
            },
            WmParams {
                convention_bits: 0,
                ..WmParams::default()
            },
            WmParams {
                window: 4,
                ..WmParams::default()
            },
            WmParams {
                min_active: Some(0),
                ..WmParams::default()
            },
            WmParams {
                max_iterations: 0,
                ..WmParams::default()
            },
            WmParams {
                value_bits: 60,
                ..WmParams::default()
            },
        ] {
            assert!(p.validate().is_err(), "{p:?} should be rejected");
        }
    }

    #[test]
    fn watermark_length_constraint() {
        let p = WmParams {
            selection_modulus: 8,
            ..WmParams::default()
        };
        p.validate_for_watermark(7).unwrap();
        assert!(p.validate_for_watermark(8).is_err());
    }

    #[test]
    fn carrier_fraction_formula() {
        let p = WmParams {
            selection_modulus: 20,
            ..WmParams::default()
        };
        assert!((p.carrier_fraction(1) - 0.05).abs() < 1e-12);
        assert!((p.carrier_fraction(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builders_compose() {
        let p = WmParams::default()
            .with_radius(0.02)
            .with_degree(5)
            .with_selection_modulus(11)
            .with_label_len(25)
            .with_convention_bits(2)
            .with_min_active(Some(4));
        assert_eq!(p.radius, 0.02);
        assert_eq!(p.degree, 5);
        assert_eq!(p.selection_modulus, 11);
        assert_eq!(p.label_len, 25);
        assert_eq!(p.convention_bits, 2);
        assert_eq!(p.min_active, Some(4));
        p.validate().unwrap();
    }
}
