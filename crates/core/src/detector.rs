//! Watermark detection with majority-voting buckets (§3.3).
//!
//! Detection mirrors embedding: scan major extremes (at the transform-
//! adjusted degree ν′, §4.2), rebuild labels, re-apply the selection
//! criterion, and let the encoding extract votes from each selected
//! extreme's characteristic subset. Each extreme's majority verdict
//! increments the `true` or `false` bucket of its watermark bit; in the
//! end `wm_construct` decides each bit by bucket difference > κ, leaving
//! bits *undefined* when the buckets balance — the signature of
//! unwatermarked data.
//!
//! Detection never consults provenance or timestamps: it sees exactly the
//! value sequence Mallory publishes.

use crate::encoding::SubsetEncoder;
use crate::scheme::Scheme;
use crate::session::{DetectConfig, DetectSession};
use crate::transform_estimate::{estimate_degree, StreamFingerprint};
use crate::watermark::RecoveredWatermark;
use std::sync::Arc;
use wms_math::special::binomial_tail_ge;
use wms_stream::Sample;

/// Per-bit voting buckets (`wm[i]_T` / `wm[i]_F` in §3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitBuckets {
    /// Extremes whose subset voted `true` for this bit.
    pub true_count: u64,
    /// Extremes whose subset voted `false`.
    pub false_count: u64,
}

impl BitBuckets {
    /// Signed bias: `true_count − false_count`.
    pub fn bias(&self) -> i64 {
        self.true_count as i64 - self.false_count as i64
    }

    /// κ-thresholded decision (`None` = undefined).
    pub fn decide(&self, kappa: u64) -> Option<bool> {
        let d = self.bias();
        if d > kappa as i64 {
            Some(true)
        } else if -d > kappa as i64 {
            Some(false)
        } else {
            None
        }
    }
}

/// Outcome of a detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// One bucket pair per watermark bit.
    pub buckets: Vec<BitBuckets>,
    /// Major extremes examined (at ν′).
    pub majors_seen: u64,
    /// Major extremes skipped during labeler warm-up.
    pub warmup_skipped: u64,
    /// Extremes passing the selection criterion.
    pub selected: u64,
    /// Selected extremes whose subsets produced a verdict.
    pub verdicts: u64,
    /// Selected extremes whose votes tied / were empty.
    pub abstained: u64,
    /// ν′ actually used.
    pub effective_degree: usize,
    /// χ used (1.0 when no transform assumed/estimated).
    pub assumed_transform_degree: f64,
}

impl DetectionReport {
    /// Detected watermark bias of bit 0 — the figure-of-merit of every §6
    /// experiment (they all embed a one-bit `true` mark).
    pub fn bias(&self) -> i64 {
        self.buckets.first().map(BitBuckets::bias).unwrap_or(0)
    }

    /// Smallest |bias| across bits — the weakest link of a multi-bit mark.
    pub fn min_abs_bias(&self) -> i64 {
        self.buckets
            .iter()
            .map(|b| b.bias().abs())
            .min()
            .unwrap_or(0)
    }

    /// `wm_construct` (§3.3): per-bit κ-thresholded decisions.
    pub fn recovered(&self, kappa: u64) -> RecoveredWatermark {
        RecoveredWatermark {
            bits: self.buckets.iter().map(|b| b.decide(kappa)).collect(),
        }
    }

    /// Footnote-5 false-positive probability for bit 0: a bias of `b`
    /// consistent verdicts has probability `2^−b` on random data.
    ///
    /// This is the paper's shorthand; it is optimistic when the bias is
    /// small relative to the verdict count (with n verdicts free to vary,
    /// clean data shows bias ≥ 6 about 15 % of the time at n ≈ 33). For
    /// court-grade claims prefer
    /// [`false_positive_probability_binomial`](Self::false_positive_probability_binomial),
    /// and note that low-entropy label parameters fatten the clean tail
    /// further (see EXPERIMENTS.md, "false-positive calibration").
    pub fn false_positive_probability(&self) -> f64 {
        let b = self.bias();
        if b <= 0 {
            1.0
        } else {
            2f64.powi(-(b.min(1023) as i32))
        }
    }

    /// Exact binomial false-positive probability for bit 0: probability
    /// that ≥ `true_count` of the verdicts land `true` under the
    /// unwatermarked null (p = ½).
    pub fn false_positive_probability_binomial(&self) -> f64 {
        let Some(b) = self.buckets.first() else {
            return 1.0;
        };
        let n = b.true_count + b.false_count;
        binomial_tail_ge(n, b.true_count, 0.5)
    }

    /// Court-time confidence, `1 − P_fp` (§5).
    pub fn confidence(&self) -> f64 {
        1.0 - self.false_positive_probability()
    }
}

/// How the detector learns the transform degree χ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransformHint {
    /// Assume the stream is untransformed (χ = 1).
    None,
    /// χ known out-of-band (e.g. from the rate ratio ς/ς′).
    Known(f64),
    /// Estimate χ from characteristic-subset shrinkage against the
    /// fingerprint preserved at embedding time (§4.2).
    Estimate(StreamFingerprint),
}

/// Streaming watermark detector: one [`DetectConfig`] driving one
/// [`DetectSession`] (see [`crate::session`] for the multi-stream form).
pub struct Detector {
    config: DetectConfig,
    session: DetectSession,
}

impl Detector {
    /// Creates a detector for a watermark of `wm_len` bits, with a fixed
    /// transform degree (use [`Detector::detect_stream`] for §4.2
    /// estimation, which needs a look at the segment first).
    pub fn new(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm_len: usize,
        chi: f64,
    ) -> Result<Self, String> {
        let config = DetectConfig::new(scheme, encoder, wm_len, chi)?;
        let session = config.new_session();
        Ok(Detector { config, session })
    }

    /// Feeds one sample. Steady state allocates nothing: processed data
    /// is discarded from the window rather than collected.
    pub fn push(&mut self, s: Sample) {
        self.config.push(&mut self.session, s);
    }

    /// Flushes and produces the report.
    pub fn finish(mut self) -> DetectionReport {
        self.config.finish(&mut self.session)
    }

    /// The shared configuration / per-stream state, consumed. A
    /// multi-stream caller can keep the config behind an `Arc` and attach
    /// fresh sessions to it (see [`crate::session`]).
    pub fn into_parts(self) -> (DetectConfig, DetectSession) {
        (self.config, self.session)
    }

    /// Convenience: detects over an in-memory segment, resolving the
    /// transform hint (including §4.2 estimation) first.
    pub fn detect_stream(
        scheme: Scheme,
        encoder: Arc<dyn SubsetEncoder>,
        wm_len: usize,
        samples: &[Sample],
        hint: TransformHint,
    ) -> Result<DetectionReport, String> {
        let chi = match hint {
            TransformHint::None => 1.0,
            TransformHint::Known(c) => c,
            TransformHint::Estimate(fp) => {
                let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                estimate_degree(&fp, &values).unwrap_or(1.0)
            }
        };
        let mut d = Detector::new(scheme, encoder, wm_len, chi)?;
        for &s in samples {
            d.push(s);
        }
        Ok(d.finish())
    }

    /// Extremes examined so far (for progress reporting).
    pub fn majors_seen(&self) -> u64 {
        self.session.majors_seen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::initial::InitialEncoder;
    use crate::encoding::multihash::MultiHashEncoder;
    use crate::params::WmParams;
    use crate::watermark::Watermark;
    use crate::Embedder;
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn test_params() -> WmParams {
        WmParams {
            window: 256,
            degree: 3,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            // 8 of 10 pairs — above the binomial noise floor, ~18
            // candidates per embedding (fast enough for debug builds).
            min_active: Some(8),
            ..WmParams::default()
        }
    }

    fn scheme(key: u64) -> Scheme {
        Scheme::new(test_params(), KeyedHash::md5(Key::from_u64(key))).unwrap()
    }

    fn test_stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.35 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 17.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn roundtrip_initial_encoder_true_bias() {
        let (wmed, stats) = Embedder::embed_stream(
            scheme(42),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(4000),
        )
        .unwrap();
        assert!(stats.embedded > 5);
        let report = Detector::detect_stream(
            scheme(42),
            Arc::new(InitialEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        assert!(
            report.bias() as u64 >= stats.embedded / 2,
            "bias {} vs embedded {}",
            report.bias(),
            stats.embedded
        );
        assert!(report.confidence() > 0.99);
        assert!(report.false_positive_probability() < 0.01);
    }

    #[test]
    fn roundtrip_multihash_encoder() {
        let (wmed, stats) = Embedder::embed_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &test_stream(4000),
        )
        .unwrap();
        assert!(stats.embedded > 5, "{stats:?}");
        let report = Detector::detect_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        assert!(
            report.bias() as u64 >= stats.embedded / 2,
            "bias {} embedded {}",
            report.bias(),
            stats.embedded
        );
    }

    #[test]
    fn unwatermarked_data_yields_no_bias() {
        let report = Detector::detect_stream(
            scheme(42),
            Arc::new(InitialEncoder),
            1,
            &test_stream(4000),
            TransformHint::None,
        )
        .unwrap();
        let b = report.bias().unsigned_abs();
        assert!(
            b * b <= 9 * (report.verdicts + 1), // |bias| ≲ 3·sqrt(n)
            "unwatermarked bias {b} with {} verdicts",
            report.verdicts
        );
        // κ-thresholded reconstruction should leave the bit undefined or
        // at best weakly decided.
        let rec = report.recovered((report.verdicts / 2).max(1));
        assert_eq!(rec.bits[0], None);
    }

    #[test]
    fn wrong_key_detects_nothing() {
        let (wmed, _) = Embedder::embed_stream(
            scheme(42),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &test_stream(4000),
        )
        .unwrap();
        let report = Detector::detect_stream(
            scheme(43), // different key
            Arc::new(InitialEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        let b = report.bias().unsigned_abs();
        assert!(
            b * b <= 9 * (report.verdicts + 1),
            "wrong-key bias {b} with {} verdicts",
            report.verdicts
        );
    }

    /// Stream whose extreme magnitudes sweep many msb(·, β) buckets, so
    /// the selection criterion can address every watermark bit. (With a
    /// constant-amplitude carrier all extremes share one msb and map to a
    /// single bit index — an inherent property of §3.2's selection.)
    fn msb_diverse_stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                let amp = 0.08 + 0.38 * (0.5 + 0.5 * (t * core::f64::consts::TAU / 4096.0).sin());
                amp * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.02 * (t * core::f64::consts::TAU / 17.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn multibit_watermark_reconstructs() {
        let wm = Watermark::from_bits(vec![true, false, true]);
        let p = WmParams {
            selection_modulus: 4,
            ..test_params()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(9))).unwrap();
        let (wmed, stats) = Embedder::embed_stream(
            s.clone(),
            Arc::new(InitialEncoder),
            wm.clone(),
            &msb_diverse_stream(16_000),
        )
        .unwrap();
        assert!(stats.embedded > 10);
        let report =
            Detector::detect_stream(s, Arc::new(InitialEncoder), 3, &wmed, TransformHint::None)
                .unwrap();
        let rec = report.recovered(1);
        assert!(
            rec.exactly_matches(&wm),
            "recovered {rec} vs {wm} (buckets {:?})",
            report.buckets
        );
    }

    #[test]
    fn report_pfp_relations() {
        let r = DetectionReport {
            buckets: vec![BitBuckets {
                true_count: 12,
                false_count: 2,
            }],
            majors_seen: 20,
            warmup_skipped: 0,
            selected: 14,
            verdicts: 14,
            abstained: 0,
            effective_degree: 3,
            assumed_transform_degree: 1.0,
        };
        assert_eq!(r.bias(), 10);
        assert!((r.false_positive_probability() - 2f64.powi(-10)).abs() < 1e-12);
        let exact = r.false_positive_probability_binomial();
        assert!(exact > 0.0 && exact < 0.01);
        assert!(r.confidence() > 0.999);
    }

    #[test]
    fn bucket_decisions() {
        let b = BitBuckets {
            true_count: 10,
            false_count: 3,
        };
        assert_eq!(b.bias(), 7);
        assert_eq!(b.decide(6), Some(true));
        assert_eq!(b.decide(7), None);
        let f = BitBuckets {
            true_count: 1,
            false_count: 9,
        };
        assert_eq!(f.decide(5), Some(false));
    }

    #[test]
    fn rejects_bad_transform_degree() {
        assert!(Detector::new(scheme(1), Arc::new(InitialEncoder), 1, 0.5).is_err());
    }

    #[test]
    fn known_transform_degree_adjusts_nu() {
        let p = WmParams {
            degree: 6,
            ..test_params()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(2))).unwrap();
        let d = Detector::new(s, Arc::new(InitialEncoder), 1, 3.0).unwrap();
        let (config, _session) = d.into_parts();
        assert_eq!(config.effective_degree(), 2);
    }
}
