//! Per-label memoization of the §4.3 convention codes.
//!
//! [`Scheme::convention_code`] depends on the stream value only through
//! `lsb(m_raw, γ)` — at most `2^γ` distinct inputs per label. The
//! multi-hash search evaluates one code per candidate m_ij average, so a
//! table keyed by the current label turns the inner-loop keyed hash into
//! an array index. The table is filled lazily (most searches touch a
//! sparse subset of the 2^γ entries) and invalidated by generation stamp
//! when the labeler advances, so a label switch costs nothing beyond
//! bumping a counter — no memset of the table.
//!
//! Entries pack the 30-bit generation stamp and the 2-bit classification
//! of the code (`false` / `true` / neither) into one `u32`, so a lookup
//! touches a single cache line. The classification is all the hot paths
//! consume: `code == convention_target(bit)` is exactly
//! `classify_code(code) == Some(bit)` because the targets are the
//! all-ones and all-zero codes.

use crate::labeling::Label;
use crate::scheme::Scheme;
use wms_crypto::CompiledU64Hash;

/// Largest γ that is memoized: 2^20 entries × 4 bytes = 4 MiB. Wider
/// configurations fall back to direct hashing (the table would thrash).
pub const MAX_MEMO_BITS: u32 = 20;

const CLASS_FALSE: u32 = 0;
const CLASS_TRUE: u32 = 1;
const CLASS_NEITHER: u32 = 2;
const GEN_BITS: u32 = 30;

/// Lazily filled, generation-stamped memo of convention-code
/// classifications for one label at a time.
///
/// A table caches derivations of one [`Scheme`]'s key; use a separate
/// table per scheme (the embedder/detector scratch does exactly that).
#[derive(Debug, Clone)]
pub struct CodeTable {
    /// `(generation << 2) | classification` per `lsb(m, γ)` value;
    /// an entry is valid only when its generation matches `gen`.
    entries: Vec<u32>,
    /// Label the current generation corresponds to.
    label: Option<Label>,
    /// Per-label compiled convention-code hasher (single compression per
    /// miss with a short key); rebuilt when the labeler advances.
    compiled: Option<CompiledU64Hash>,
    /// Current generation (starts at 1; entry generation 0 is never valid).
    gen: u32,
    /// When false, every lookup hashes directly (one-shot API paths that
    /// would not amortize the table allocation).
    enabled: bool,
    /// Whether the *current* label uses the memo array (adaptive; see
    /// [`ensure`](Self::ensure)). The compiled hasher is used either way.
    use_table: bool,
    /// γ the current label/compiled state was built for.
    gamma: u32,
    /// [`Scheme::memo_fingerprint`] the current state was built for, so
    /// one scratch reused across schemes (different key, τ, or hash
    /// algorithm) invalidates instead of returning stale codes.
    fingerprint: u64,
    /// Total lookups and label switches observed, for the adaptive
    /// table/bypass decision.
    lookups: u64,
    label_switches: u64,
}

impl Default for CodeTable {
    fn default() -> Self {
        CodeTable::new()
    }
}

impl CodeTable {
    /// An enabled table; storage is allocated on first use.
    pub fn new() -> Self {
        CodeTable {
            entries: Vec::new(),
            label: None,
            compiled: None,
            gen: 0,
            enabled: true,
            use_table: true,
            gamma: 0,
            fingerprint: 0,
            lookups: 0,
            label_switches: 0,
        }
    }

    /// A pass-through table that always hashes directly.
    pub fn disabled() -> Self {
        CodeTable {
            enabled: false,
            ..CodeTable::new()
        }
    }

    /// Points the table at `label`: recompiles the per-label hasher and,
    /// when the memo array is worth using, (re)allocates it and bumps
    /// the generation stamp. Returns false when the compiled path is
    /// unavailable altogether (disabled, or γ too wide).
    ///
    /// The memo array pays off only when a label sees more lookups than
    /// a fraction of its 2^γ entries — a full-convention search (2^15+
    /// candidates per label) revisits values constantly, while the
    /// `min_active` reduced search touches a few hundred mostly distinct
    /// entries per label and would just thrash cache. The decision is
    /// adaptive: small tables always memoize; otherwise memoize while
    /// the observed mean lookups per label stays above `2^γ / 8`.
    fn ensure(&mut self, scheme: &Scheme, label: &Label) -> bool {
        let gamma = scheme.params.lsb_bits;
        if !self.enabled || gamma > MAX_MEMO_BITS {
            return false;
        }
        if self.label.as_ref() == Some(label)
            && self.gamma == gamma
            && self.fingerprint == scheme.memo_fingerprint()
        {
            return true;
        }
        let size = 1usize << gamma;
        self.label = Some(*label);
        self.gamma = gamma;
        self.fingerprint = scheme.memo_fingerprint();
        self.label_switches += 1;
        self.compiled = Some(scheme.compile_convention_hasher(label));
        let cache_resident = size <= (1 << 12);
        let warmup = self.label_switches <= 2;
        let avg_lookups = self.lookups / self.label_switches;
        self.use_table = cache_resident || warmup || avg_lookups as usize >= size / 8;
        if self.use_table {
            if self.entries.len() != size {
                self.entries.clear();
                self.entries.resize(size, 0);
                self.gen = 0;
            }
            self.gen += 1;
            if self.gen >= (1 << GEN_BITS) {
                // Generation field exhausted: restart stamping.
                self.entries.iter_mut().for_each(|e| *e = 0);
                self.gen = 1;
            }
        }
        true
    }

    fn class_of_code(scheme: &Scheme, code: u64) -> u32 {
        match scheme.classify_code(code) {
            Some(true) => CLASS_TRUE,
            Some(false) => CLASS_FALSE,
            None => CLASS_NEITHER,
        }
    }

    fn decode(class: u32) -> Option<bool> {
        match class {
            CLASS_TRUE => Some(true),
            CLASS_FALSE => Some(false),
            _ => None,
        }
    }

    /// Classification of `convention_code(m_raw, label)` — memoized
    /// equivalent of `scheme.classify_code(scheme.convention_code(..))`.
    #[inline]
    pub fn classify(&mut self, scheme: &Scheme, label: &Label, m_raw: i64) -> Option<bool> {
        if !self.ensure(scheme, label) {
            return scheme.classify_code(scheme.convention_code(m_raw, label));
        }
        self.lookups += 1;
        let idx = scheme.codec.lsb(m_raw, scheme.params.lsb_bits) as usize;
        if !self.use_table {
            let code = self
                .compiled
                .as_mut()
                .expect("compiled hasher set with label")
                .hash_lsb(idx as u64, scheme.params.convention_bits);
            return scheme.classify_code(code);
        }
        let entry = self.entries[idx];
        let class = if entry >> 2 == self.gen {
            entry & 0b11
        } else {
            let code = self
                .compiled
                .as_mut()
                .expect("compiled hasher set with label")
                .hash_lsb(idx as u64, scheme.params.convention_bits);
            debug_assert_eq!(code, scheme.convention_code_of_lsb(idx as u64, label));
            let class = Self::class_of_code(scheme, code);
            self.entries[idx] = (self.gen << 2) | class;
            class
        };
        Self::decode(class)
    }

    /// Classifies up to `N` raws at once (`raws.len() ∈ [1, N]`); slot
    /// `l` of the result equals `classify(scheme, label, raws[l])`.
    /// Memo misses within the batch are hashed together through
    /// [`wms_crypto::CompiledU64Hash::hash_u64_lanes`], interleaving the
    /// otherwise latency-bound hash chains (the multi-hash search uses
    /// `N = 8`, two interleaved SSE2 chains / one AVX2 chain).
    pub fn classify_batch<const N: usize>(
        &mut self,
        scheme: &Scheme,
        label: &Label,
        raws: &[i64],
    ) -> [Option<bool>; N] {
        debug_assert!(!raws.is_empty() && raws.len() <= N);
        let mut out = [None; N];
        if !self.ensure(scheme, label) {
            for (l, &raw) in raws.iter().enumerate() {
                out[l] = scheme.classify_code(scheme.convention_code(raw, label));
            }
            return out;
        }
        self.lookups += raws.len() as u64;
        let gamma = scheme.params.lsb_bits;
        let tau = scheme.params.convention_bits;
        let mask = if tau == 64 { u64::MAX } else { (1 << tau) - 1 };
        if !self.use_table {
            // Bypass the memo: hash every lane (batched when possible).
            let compiled = self.compiled.as_mut().expect("compiled hasher set");
            let mut xs = [0u64; N];
            for (l, &raw) in raws.iter().enumerate() {
                xs[l] = scheme.codec.lsb(raw, gamma);
            }
            let codes = compiled.hash_u64_lanes(xs);
            for l in 0..raws.len() {
                out[l] = scheme.classify_code(codes[l] & mask);
            }
            return out;
        }
        let mut miss_lanes = [0usize; N];
        let mut miss_idxs = [0u64; N];
        let mut misses = 0usize;
        for (l, &raw) in raws.iter().enumerate() {
            let idx = scheme.codec.lsb(raw, gamma) as usize;
            let entry = self.entries[idx];
            if entry >> 2 == self.gen {
                out[l] = Self::decode(entry & 0b11);
            } else {
                miss_lanes[misses] = l;
                miss_idxs[misses] = idx as u64;
                misses += 1;
            }
        }
        if misses == 0 {
            return out;
        }
        let compiled = self.compiled.as_mut().expect("compiled hasher set");
        // Pad unused lanes with the first miss; duplicate stores are
        // idempotent (pure function of the index).
        let mut xs = [miss_idxs[0]; N];
        xs[..misses].copy_from_slice(&miss_idxs[..misses]);
        let codes = compiled.hash_u64_lanes(xs);
        for m in 0..misses {
            let class = Self::class_of_code(scheme, codes[m] & mask);
            self.entries[miss_idxs[m] as usize] = (self.gen << 2) | class;
            out[miss_lanes[m]] = Self::decode(class);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WmParams;
    use wms_crypto::{Key, KeyedHash};

    fn scheme(params: WmParams) -> Scheme {
        Scheme::new(params, KeyedHash::md5(Key::from_u64(31))).unwrap()
    }

    fn label(bits: u64) -> Label {
        Label::from_parts((1 << 6) | (bits & 63), 7)
    }

    #[test]
    fn memoized_equals_direct() {
        for tau in [1u32, 2, 3] {
            let s = scheme(WmParams {
                convention_bits: tau,
                ..WmParams::default()
            });
            let mut table = CodeTable::new();
            for l in 0..4u64 {
                let lab = label(l);
                for m in -300i64..300 {
                    let direct = s.classify_code(s.convention_code(m, &lab));
                    assert_eq!(table.classify(&s, &lab, m), direct, "τ={tau} l={l} m={m}");
                }
            }
        }
    }

    #[test]
    fn scheme_switch_invalidates() {
        // One table reused across schemes that differ only in key, τ, or
        // algorithm — but share label and γ — must never serve the other
        // scheme's cached codes.
        let a = scheme(WmParams::default());
        let b = Scheme::new(
            WmParams::default(),
            KeyedHash::md5(Key::from_u64(32)), // different key
        )
        .unwrap();
        let c = Scheme::new(
            WmParams::default(),
            KeyedHash::sha256(Key::from_u64(31)), // different algorithm
        )
        .unwrap();
        let d = scheme(WmParams {
            convention_bits: 2, // different τ
            ..WmParams::default()
        });
        let mut table = CodeTable::new();
        let lab = label(3);
        for round in 0..2 {
            for s in [&a, &b, &c, &d] {
                for m in 0..64i64 {
                    let direct = s.classify_code(s.convention_code(m, &lab));
                    assert_eq!(
                        table.classify(s, &lab, m),
                        direct,
                        "round {round} fp {:#x}",
                        s.memo_fingerprint()
                    );
                }
            }
        }
    }

    #[test]
    fn label_switch_invalidates() {
        let s = scheme(WmParams::default());
        let mut table = CodeTable::new();
        // Interleave labels: stamps must keep entries separate.
        for round in 0..3 {
            for l in [0u64, 1, 0, 2, 1] {
                let lab = label(l);
                for m in 0..64i64 {
                    let direct = s.classify_code(s.convention_code(m, &lab));
                    assert_eq!(table.classify(&s, &lab, m), direct, "round {round}");
                }
            }
        }
    }

    #[test]
    fn disabled_table_passes_through() {
        let s = scheme(WmParams::default());
        let mut table = CodeTable::disabled();
        let lab = label(5);
        for m in 0..50i64 {
            assert_eq!(
                table.classify(&s, &lab, m),
                s.classify_code(s.convention_code(m, &lab))
            );
        }
        assert!(table.entries.is_empty(), "disabled table allocates nothing");
    }

    #[test]
    fn wide_gamma_falls_back_to_hashing() {
        let s = scheme(WmParams {
            value_bits: 40,
            lsb_bits: MAX_MEMO_BITS + 4,
            embed_bits: 16,
            ..WmParams::default()
        });
        let mut table = CodeTable::new();
        let lab = label(9);
        for m in [0i64, 1, -1, 123_456_789, -987_654_321] {
            assert_eq!(
                table.classify(&s, &lab, m),
                s.classify_code(s.convention_code(m, &lab))
            );
        }
        assert!(table.entries.is_empty(), "over-wide γ must not allocate");
    }

    #[test]
    fn gamma_change_resizes() {
        let mut table = CodeTable::new();
        let s8 = scheme(WmParams {
            lsb_bits: 8,
            embed_bits: 8,
            ..WmParams::default()
        });
        let s10 = scheme(WmParams {
            lsb_bits: 10,
            embed_bits: 10,
            ..WmParams::default()
        });
        let lab = label(3);
        for m in 0..600i64 {
            assert_eq!(
                table.classify(&s8, &lab, m),
                s8.classify_code(s8.convention_code(m, &lab))
            );
        }
        assert_eq!(table.entries.len(), 256);
        for m in 0..600i64 {
            assert_eq!(
                table.classify(&s10, &lab, m),
                s10.classify_code(s10.convention_code(m, &lab))
            );
        }
        assert_eq!(table.entries.len(), 1024);
    }
}
