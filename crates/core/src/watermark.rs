//! Watermark payloads and their comparison.
//!
//! A watermark `wm` is a bit string; `wm[i]` is the i-th bit (§2.2). The
//! experiments mostly embed a one-bit `true` watermark and measure its
//! detection *bias*; multi-bit payloads (ownership strings) are supported
//! throughout and reconstructed by `wm_construct` (§3.3).

/// A watermark bit string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Watermark {
    bits: Vec<bool>,
}

impl Watermark {
    /// From explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        assert!(!bits.is_empty(), "watermark must have at least one bit");
        Watermark { bits }
    }

    /// The one-bit `true` watermark used by the bias experiments.
    pub fn single(bit: bool) -> Self {
        Watermark { bits: vec![bit] }
    }

    /// From bytes, most significant bit of each byte first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(!bytes.is_empty(), "watermark must have at least one bit");
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &b in bytes {
            for i in (0..8).rev() {
                bits.push((b >> i) & 1 == 1);
            }
        }
        Watermark { bits }
    }

    /// From an ASCII string's bytes (convenient ownership strings).
    pub fn from_text(s: &str) -> Self {
        Self::from_bytes(s.as_bytes())
    }

    /// b(wm): number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false — constructors reject empty payloads.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `wm[i]`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// All bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Back to bytes (zero-padded to a whole byte, msb-first).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }

    /// Bit-error count against another watermark of the same length.
    pub fn hamming(&self, other: &Watermark) -> usize {
        assert_eq!(self.len(), other.len(), "length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl std::fmt::Display for Watermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// Result of reconstructing a watermark from voting buckets: each position
/// is `true`, `false`, or still undecided (buckets within κ of each other —
/// the "undefined" outcome of §3.3 that flags unwatermarked data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredWatermark {
    /// Per-bit decision; `None` = undefined.
    pub bits: Vec<Option<bool>>,
}

impl RecoveredWatermark {
    /// Number of decided (non-`None`) bits.
    pub fn decided(&self) -> usize {
        self.bits.iter().filter(|b| b.is_some()).count()
    }

    /// Fraction of bits matching a reference payload (undecided counts as
    /// a miss).
    pub fn match_fraction(&self, reference: &Watermark) -> f64 {
        assert_eq!(self.bits.len(), reference.len(), "length mismatch");
        if self.bits.is_empty() {
            return 0.0;
        }
        let hits = self
            .bits
            .iter()
            .zip(reference.bits())
            .filter(|(got, want)| got.map(|g| g == **want).unwrap_or(false))
            .count();
        hits as f64 / self.bits.len() as f64
    }

    /// Whether every bit was decided and matches the reference.
    pub fn exactly_matches(&self, reference: &Watermark) -> bool {
        self.bits.len() == reference.len()
            && self
                .bits
                .iter()
                .zip(reference.bits())
                .all(|(got, want)| *got == Some(*want))
    }
}

impl std::fmt::Display for RecoveredWatermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bits {
            let c = match b {
                Some(true) => '1',
                Some(false) => '0',
                None => '?',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let wm = Watermark::from_bytes(&[0b1010_0001, 0xff]);
        assert_eq!(wm.len(), 16);
        assert!(wm.bit(0));
        assert!(!wm.bit(1));
        assert!(wm.bit(7));
        assert_eq!(wm.to_bytes(), vec![0b1010_0001, 0xff]);
    }

    #[test]
    fn text_payload() {
        let wm = Watermark::from_text("(c) Alice");
        assert_eq!(wm.len(), 9 * 8);
        assert_eq!(wm.to_bytes(), b"(c) Alice".to_vec());
    }

    #[test]
    fn display_is_bitstring() {
        let wm = Watermark::from_bits(vec![true, false, true]);
        assert_eq!(wm.to_string(), "101");
    }

    #[test]
    fn hamming_distance() {
        let a = Watermark::from_bits(vec![true, true, false]);
        let b = Watermark::from_bits(vec![true, false, true]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_rejected() {
        Watermark::from_bits(vec![]);
    }

    #[test]
    fn recovered_matching() {
        let reference = Watermark::from_bits(vec![true, false, true, true]);
        let rec = RecoveredWatermark {
            bits: vec![Some(true), Some(false), None, Some(false)],
        };
        assert_eq!(rec.decided(), 3);
        assert!((rec.match_fraction(&reference) - 0.5).abs() < 1e-12);
        assert!(!rec.exactly_matches(&reference));
        let full = RecoveredWatermark {
            bits: reference.bits().iter().map(|&b| Some(b)).collect(),
        };
        assert!(full.exactly_matches(&reference));
        assert_eq!(full.to_string(), "1011");
    }
}
