//! Versioned binary checkpoint encoding.
//!
//! The workspace is offline (no serde), so durable session snapshots use
//! a small hand-rolled binary format: little-endian fixed-width integers,
//! `f64`s stored as raw IEEE-754 bits (bit-exact round-trips are a
//! correctness requirement — a restored session must replay *identically*
//! to one that never stopped), and length-prefixed byte strings.
//!
//! Every snapshot opens with a 4-byte magic, a `u16` format version and
//! the owning [`Scheme::memo_fingerprint`](crate::Scheme::memo_fingerprint),
//! so a restore against the wrong key/τ/γ/α is rejected with a typed
//! error instead of silently desynchronizing the watermark.
//!
//! The encoders here are deliberately dumb: no varints, no compression.
//! Checkpoints are dominated by the resident sliding window (a few
//! thousand samples), so simplicity and auditability win over bytes.

/// Why a checkpoint could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// Decoding finished but unconsumed bytes remain.
    TrailingBytes,
    /// The leading magic did not match the expected structure.
    BadMagic {
        /// Magic the decoder expected.
        expected: [u8; 4],
        /// Magic actually found.
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the snapshot.
        found: u16,
        /// Newest version this build can decode.
        supported: u16,
    },
    /// The snapshot is of a different session kind than the config it is
    /// being restored under (e.g. a detect snapshot into an embed config).
    WrongKind {
        /// Kind tag the restoring config expected.
        expected: u8,
        /// Kind tag found in the snapshot.
        found: u8,
    },
    /// The snapshot was taken under a different scheme (key/τ/γ/α):
    /// restoring would silently produce a desynchronized watermark, so it
    /// is refused.
    FingerprintMismatch {
        /// `memo_fingerprint` of the restoring scheme.
        expected: u64,
        /// `memo_fingerprint` stamped into the snapshot.
        found: u64,
    },
    /// A stored record's integrity checksum does not match its payload:
    /// the bytes were corrupted at rest (bit rot, a torn write, manual
    /// editing). Restoring them could silently desynchronize the
    /// watermark, so they are refused.
    ChecksumMismatch {
        /// Checksum recomputed over the payload actually read.
        expected: u64,
        /// Checksum stored alongside the record.
        found: u64,
    },
    /// Structurally decodable but semantically inconsistent state.
    Invalid(String),
}

impl CheckpointError {
    /// Stable small-integer identity for this error variant, used where
    /// the error crosses a process or wire boundary (CLI exit codes,
    /// `wmsd` NACK details). Values are part of the public contract —
    /// append, never renumber.
    pub fn code(&self) -> u16 {
        match self {
            CheckpointError::Truncated => 1,
            CheckpointError::TrailingBytes => 2,
            CheckpointError::BadMagic { .. } => 3,
            CheckpointError::UnsupportedVersion { .. } => 4,
            CheckpointError::WrongKind { .. } => 5,
            CheckpointError::FingerprintMismatch { .. } => 6,
            CheckpointError::ChecksumMismatch { .. } => 7,
            CheckpointError::Invalid(_) => 8,
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::TrailingBytes => write!(f, "checkpoint has trailing bytes"),
            CheckpointError::BadMagic { expected, found } => write!(
                f,
                "bad checkpoint magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads <= {supported})"
            ),
            CheckpointError::WrongKind { expected, found } => write!(
                f,
                "session kind mismatch: snapshot kind {found}, config expects {expected}"
            ),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "scheme fingerprint mismatch: snapshot was taken under {found:#018x}, \
                 restoring scheme is {expected:#018x} (different key or τ/γ/α parameters)"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "record checksum mismatch: stored {found:#018x}, payload hashes to \
                 {expected:#018x} (bytes corrupted at rest)"
            ),
            CheckpointError::Invalid(msg) => write!(f, "invalid checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Writer primed with a 4-byte structure magic.
    pub fn with_magic(magic: [u8; 4]) -> Self {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&magic);
        w
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u64` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked little-endian decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Reader that first checks a 4-byte structure magic.
    pub fn with_magic(buf: &'a [u8], magic: [u8; 4]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(buf);
        let found = r.take(4)?;
        if found != magic {
            return Err(CheckpointError::BadMagic {
                expected: magic,
                found: [found[0], found[1], found[2], found[3]],
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as raw bits.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` length prefix and that many raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| CheckpointError::Truncated)?;
        self.take(n)
    }

    /// Reads a `u64` that must fit a `usize` sequence length. Bounds it
    /// by the bytes actually remaining so a corrupt length cannot drive a
    /// huge up-front allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| CheckpointError::Truncated)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the structure consumed every byte.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::with_magic(*b"TEST");
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.1);
        w.put_f64(f64::NAN);
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = ByteReader::with_magic(&bytes, *b"TEST").unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan(), "NaN bits survive");
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn wrong_magic_rejected() {
        let w = ByteWriter::with_magic(*b"AAAA");
        let bytes = w.into_bytes();
        let e = ByteReader::with_magic(&bytes, *b"BBBB").unwrap_err();
        assert!(matches!(e, CheckpointError::BadMagic { .. }));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = ByteWriter::with_magic(*b"TEST");
        w.put_u64(42);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        // Every proper prefix must fail with Truncated, never panic.
        for cut in 0..bytes.len() {
            let r = ByteReader::with_magic(&bytes[..cut], *b"TEST");
            let failed = match r {
                Err(CheckpointError::Truncated) => true,
                Err(other) => panic!("unexpected error at cut {cut}: {other:?}"),
                Ok(mut r) => {
                    let a = r.get_u64();
                    let b = r.get_bytes();
                    a.is_err() || b.is_err()
                }
            };
            assert!(failed, "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.finish().unwrap_err(), CheckpointError::TrailingBytes);
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_len(8).unwrap_err(), CheckpointError::Truncated);
        let mut r2 = ByteReader::new(&bytes);
        assert_eq!(r2.get_bytes().unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = CheckpointError::FingerprintMismatch {
            expected: 1,
            found: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("fingerprint"), "{msg}");
        assert!(msg.contains("key"), "{msg}");
    }
}
