//! On-the-fly extreme labeling (§4.1).
//!
//! The labeling scheme breaks the correlation between a watermark bit's
//! *location* and its *value* that enables Mallory's bucket-counting
//! attack: the bit position is derived from `H(label(ε), k1)` instead of
//! from ε's own value.
//!
//! A label is built purely from the *preceding* major extremes, so it can
//! be recomputed from any stream segment (supporting segmentation, A3):
//! with stride ϱ and size λ, the label of extreme number `n` is the bit
//! `1` followed by `label_bit(n−(λ−m)ϱ, n−(λ−m−1)ϱ)` for `m = 0..λ`,
//! where `label_bit(i, j) = msb(|val(i)|, β') < msb(|val(j)|, β')`.
//!
//! Worked example (paper Figure 2a, ϱ = 2): extremes A…K with msb values
//! 6, ·, 7, ·, 6, ·, 11, ·, 5, ·, 5 yield comparisons AC=1, CE=0, EG=1,
//! GI=0, IK=0 and thus `label(K) = "110100"`.

use std::collections::VecDeque;

/// A computed label: the leading `1` plus λ comparison bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    bits: u64,
    len: u32,
}

impl Label {
    /// Builds from raw parts (most significant bit = the leading `1`).
    pub fn from_parts(bits: u64, len: u32) -> Self {
        assert!((1..=61).contains(&len), "label length out of range");
        assert!(bits >> (len - 1) == 1, "leading bit must be 1");
        Label { bits, len }
    }

    /// Label value as an integer (leading `1` included).
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// Total bit length (λ + 1).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Labels are never empty (leading bit).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Canonical byte encoding for hashing: length byte then value LE.
    pub fn to_bytes(&self) -> [u8; 9] {
        let mut out = [0u8; 9];
        out[0] = self.len as u8;
        out[1..9].copy_from_slice(&self.bits.to_le_bytes());
        out
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

/// Incremental labeler over the sequence of major-extreme msb values.
///
/// Embedder and detector each own one and feed it every major extreme they
/// encounter, in stream order; `label()` then names the most recent one.
#[derive(Debug, Clone)]
pub struct Labeler {
    history: VecDeque<u64>,
    lambda: usize,
    stride: usize,
}

impl Labeler {
    /// Creates a labeler with λ comparison bits at stride ϱ.
    pub fn new(lambda: usize, stride: usize) -> Self {
        assert!((1..=60).contains(&lambda), "label_len out of range");
        assert!(stride >= 1, "label_stride must be >= 1");
        Labeler {
            history: VecDeque::with_capacity(lambda * stride + 1),
            lambda,
            stride,
        }
    }

    /// Number of major extremes that must have been seen before labels
    /// become defined (the warm-up of §5's segmentation analysis:
    /// λ·ϱ preceding extremes plus the labeled one).
    pub fn required_history(&self) -> usize {
        self.lambda * self.stride + 1
    }

    /// Records the next major extreme's `msb(|val|, β')`.
    pub fn push(&mut self, msb: u64) {
        if self.history.len() == self.required_history() {
            self.history.pop_front();
        }
        self.history.push_back(msb);
    }

    /// Label of the most recently pushed extreme; `None` during warm-up.
    pub fn label(&self) -> Option<Label> {
        let need = self.required_history();
        if self.history.len() < need {
            return None;
        }
        // history[0] is extreme n−λϱ, history[need−1] is extreme n.
        let mut bits: u64 = 1; // leading 1
        let mut m = 0;
        while m < self.lambda {
            let i = m * self.stride;
            let j = (m + 1) * self.stride;
            let bit = self.history[i] < self.history[j];
            bits = (bits << 1) | bit as u64;
            m += 1;
        }
        Some(Label {
            bits,
            len: self.lambda as u32 + 1,
        })
    }

    /// Forgets all history (e.g. when detection restarts on a segment).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The remembered msb values, oldest first (checkpoint capture).
    pub fn history(&self) -> impl Iterator<Item = u64> + '_ {
        self.history.iter().copied()
    }

    /// Rebuilds a labeler from checkpointed history (oldest first). The
    /// history must fit the λϱ+1 retention bound, or the state could not
    /// have come from this labeler shape.
    pub fn from_state(lambda: usize, stride: usize, history: &[u64]) -> Result<Self, String> {
        let mut l = Labeler::new(lambda, stride);
        if history.len() > l.required_history() {
            return Err(format!(
                "labeler history of {} exceeds retention bound {}",
                history.len(),
                l.required_history()
            ));
        }
        l.history.extend(history);
        Ok(l)
    }

    /// Number of extremes currently remembered.
    pub fn seen(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_example() {
        // ϱ = 2, λ = 5; msb values for A..K with odd positions (B,D,F,H,J)
        // arbitrary — only every 2nd extreme participates.
        let msbs = [6u64, 9, 7, 9, 6, 9, 11, 9, 5, 9, 5];
        let mut l = Labeler::new(5, 2);
        for &m in &msbs {
            l.push(m);
        }
        let label = l.label().expect("11 extremes suffice for λϱ+1 = 11");
        assert_eq!(label.to_string(), "110100");
        assert_eq!(label.len(), 6);
    }

    #[test]
    fn warm_up_returns_none() {
        let mut l = Labeler::new(3, 2);
        assert_eq!(l.required_history(), 7);
        for m in 0..6u64 {
            l.push(m);
            assert!(l.label().is_none(), "after {} pushes", m + 1);
        }
        l.push(6);
        assert!(l.label().is_some());
    }

    #[test]
    fn stride_one_compares_adjacent() {
        let mut l = Labeler::new(3, 1);
        for m in [5u64, 2, 8, 8] {
            l.push(m);
        }
        // bits: 5<2=0, 2<8=1, 8<8=0 → label 1 0 1 0.
        assert_eq!(l.label().unwrap().to_string(), "1010");
    }

    #[test]
    fn sliding_labels_differ_for_adjacent_extremes() {
        // The whole point of §4.1: consecutive extremes get different
        // labels (with overwhelming probability).
        let mut l = Labeler::new(4, 1);
        let series = [3u64, 7, 1, 9, 4, 8, 2, 6];
        let mut labels = Vec::new();
        for &m in &series {
            l.push(m);
            if let Some(lab) = l.label() {
                labels.push(lab);
            }
        }
        assert!(labels.len() >= 3);
        for w in labels.windows(2) {
            assert_ne!(w[0], w[1], "adjacent labels should differ");
        }
    }

    #[test]
    fn labels_depend_only_on_trailing_window() {
        // Same trailing λϱ+1 msbs ⇒ same label, regardless of prefix —
        // the segmentation-support property.
        let tail = [4u64, 1, 6, 2, 9];
        let mut a = Labeler::new(2, 2);
        for &m in &tail {
            a.push(m);
        }
        let mut b = Labeler::new(2, 2);
        for m in [100u64, 3, 77] {
            b.push(m);
        }
        for &m in &tail {
            b.push(m);
        }
        assert_eq!(a.label(), b.label());
    }

    #[test]
    fn corrupted_extreme_heals_after_window_passes() {
        // §4.1: a corrupted extreme damages labels only until λϱ+1 clean
        // extremes have passed.
        let clean: Vec<u64> = (0..30).map(|i| (i * 7 + 3) % 13).collect();
        let mut corrupt = clean.clone();
        // Wreck one msb in a direction that flips at least one comparison
        // (clean[10] = 8 sits above its λ-window neighbours).
        corrupt[10] = 0;
        let run = |ms: &[u64]| {
            let mut l = Labeler::new(3, 1);
            let mut out = Vec::new();
            for &m in ms {
                l.push(m);
                out.push(l.label());
            }
            out
        };
        let a = run(&clean);
        let b = run(&corrupt);
        // Disturbed region: labels involving index 10, i.e. positions
        // 10 ..= 10 + λϱ.
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if !(10..=10 + 3).contains(&i) {
                assert_eq!(x, y, "label at {i} should be unaffected");
            }
        }
        assert_ne!(a[10], b[10], "the corrupted extreme's label must change");
    }

    #[test]
    fn reset_clears_history() {
        let mut l = Labeler::new(2, 1);
        for m in 0..5u64 {
            l.push(m);
        }
        assert!(l.label().is_some());
        l.reset();
        assert_eq!(l.seen(), 0);
        assert!(l.label().is_none());
    }

    #[test]
    fn label_bytes_injective_on_len_and_bits() {
        let a = Label::from_parts(0b101, 3);
        let b = Label::from_parts(0b101, 3);
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = Label::from_parts(0b1010, 4);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    #[should_panic(expected = "leading bit")]
    fn label_requires_leading_one() {
        Label::from_parts(0b0101, 4);
    }
}
