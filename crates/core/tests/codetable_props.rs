//! Property tests for the hot-path memoization layers: `CodeTable`
//! lookups must equal direct `convention_code` hashing for arbitrary
//! raws, labels, γ and τ, and the scratch-threaded encoder entry points
//! must be bit-identical to the one-shot API.

use proptest::prelude::*;
use wms_core::codetable::CodeTable;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{EncoderScratch, Label, Scheme, SubsetEncoder, WmParams};
use wms_crypto::{Key, KeyedHash};

fn scheme(key: u64, gamma: u32, tau: u32, algo: &str) -> Scheme {
    let params = WmParams {
        lsb_bits: gamma,
        convention_bits: tau,
        embed_bits: gamma.max(3),
        ..WmParams::default()
    };
    let kh = match algo {
        "sha256" => KeyedHash::sha256(Key::from_u64(key)),
        _ => KeyedHash::md5(Key::from_u64(key)),
    };
    Scheme::new(params, kh).expect("test params valid")
}

proptest! {
    #[test]
    fn codetable_matches_direct_hashing(
        key in any::<u64>(),
        gamma in 1u32..14,
        tau in 1u32..4,
        label_bits in 0u64..512,
        raws in prop::collection::vec(-2_000_000_000i64..2_000_000_000, 1..40),
    ) {
        let s = scheme(key, gamma, tau, "md5");
        let label = Label::from_parts((1 << 10) | label_bits, 11);
        let mut table = CodeTable::new();
        for &raw in &raws {
            let direct = s.classify_code(s.convention_code(raw, &label));
            prop_assert_eq!(table.classify(&s, &label, raw), direct);
            // Second lookup hits the memo and must agree with itself.
            prop_assert_eq!(table.classify(&s, &label, raw), direct);
        }
    }

    #[test]
    fn codetable_matches_direct_hashing_sha256(
        key in any::<u64>(),
        label_bits in 0u64..512,
        raws in prop::collection::vec(-2_000_000_000i64..2_000_000_000, 1..30),
    ) {
        let s = scheme(key, 16, 2, "sha256");
        let label = Label::from_parts((1 << 10) | label_bits, 11);
        let mut table = CodeTable::new();
        for &raw in &raws {
            let direct = s.classify_code(s.convention_code(raw, &label));
            prop_assert_eq!(table.classify(&s, &label, raw), direct);
        }
    }

    #[test]
    fn codetable_survives_label_interleaving(
        key in any::<u64>(),
        labels in prop::collection::vec(0u64..64, 2..20),
        raws in prop::collection::vec(-1_000_000i64..1_000_000, 1..12),
    ) {
        // The generation stamp must keep interleaved labels from
        // leaking stale classifications into each other.
        let s = scheme(key, 10, 1, "md5");
        let mut table = CodeTable::new();
        for &lb in &labels {
            let label = Label::from_parts((1 << 6) | lb, 7);
            for &raw in &raws {
                let direct = s.classify_code(s.convention_code(raw, &label));
                prop_assert_eq!(table.classify(&s, &label, raw), direct);
            }
        }
    }

    #[test]
    fn scratch_embed_matches_oneshot(
        key in any::<u64>(),
        label_bits in 0u64..256,
        bit in any::<bool>(),
    ) {
        // A cheap min_active configuration keeps the search short while
        // still exercising the memoized candidate loop.
        let params = WmParams {
            min_active: Some(8),
            ..WmParams::default()
        };
        let s = Scheme::new(params, KeyedHash::md5(Key::from_u64(key))).unwrap();
        let label = Label::from_parts((1 << 9) | label_bits, 10);
        let values = [0.2811, 0.2856, 0.2901, 0.2877, 0.2832];
        let e = MultiHashEncoder;
        let mut scratch = EncoderScratch::new();
        let one = e.embed(&s, &values, 2, &label, bit);
        let reused = e.embed_with(&s, &mut scratch, &values, 2, &label, bit);
        prop_assert_eq!(&one, &reused);
        if let Some(r) = &one {
            let v1 = e.detect(&s, &r.values, &label);
            let v2 = e.detect_with(&s, &mut scratch, &r.values, &label);
            prop_assert_eq!(v1, v2);
        }
    }
}
