//! Property-based tests of the watermarking core's invariants.

use proptest::prelude::*;
use wms_core::encoding::{trim_around, Vote};
use wms_core::extremes::{characteristic_subset, extreme_positions, scan};
use wms_core::{FixedPointCodec, Labeler, Scheme, WmParams};
use wms_crypto::{Key, KeyedHash};

fn codec() -> FixedPointCodec {
    FixedPointCodec::new(32)
}

proptest! {
    #[test]
    fn quantize_roundtrip(raw in -(1i64 << 31)..(1i64 << 31)) {
        let c = codec();
        prop_assert_eq!(c.quantize(c.dequantize(raw)), raw);
    }

    #[test]
    fn quantize_error_bounded(x in -0.5f64..0.5) {
        let c = codec();
        prop_assert!((c.snap(x) - x).abs() <= c.quantum() / 2.0 + 1e-15);
    }

    #[test]
    fn set_get_bit_consistent(x in -0.499f64..0.499, pos in 0u32..30, bit in any::<bool>()) {
        let c = codec();
        let raw = c.quantize(x);
        let out = c.set_bit(raw, pos, bit);
        prop_assert_eq!(c.get_bit(out, pos), bit);
        // Sign preserved; other bits unchanged.
        prop_assert_eq!(out < 0, raw < 0 && c.magnitude(out) != 0);
        let diff = c.magnitude(out) ^ c.magnitude(raw);
        prop_assert!(diff == 0 || diff == 1 << pos);
    }

    #[test]
    fn replace_lsb_respects_mask(x in -0.499f64..0.499, bits in 1u32..31, pattern in any::<u64>()) {
        let c = codec();
        let raw = c.quantize(x);
        let out = c.replace_lsb(raw, bits, pattern);
        let mask = (1u64 << bits) - 1;
        prop_assert_eq!(c.magnitude(out) & mask, pattern & mask);
        prop_assert_eq!(c.magnitude(out) >> bits, c.magnitude(raw) >> bits);
    }

    #[test]
    fn msb_stable_under_lsb_changes(x in 0.01f64..0.499, beta in 1u32..8, pattern in any::<u64>()) {
        let c = codec();
        let raw = c.quantize(x);
        let altered = c.replace_lsb(raw, 16, pattern);
        prop_assert_eq!(c.msb_abs(raw, beta), c.msb_abs(altered, beta));
    }

    #[test]
    fn quantize_mean_within_input_range(values in prop::collection::vec(-0.49f64..0.49, 1..20)) {
        let c = codec();
        let snapped: Vec<f64> = values.iter().map(|&v| c.snap(v)).collect();
        let m = c.quantize_mean(&snapped);
        let lo = snapped.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = snapped.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mv = c.dequantize(m);
        prop_assert!(mv >= lo - c.quantum() && mv <= hi + c.quantum());
    }

    #[test]
    fn extremes_are_locally_extreme(values in prop::collection::vec(-1.0f64..1.0, 3..100)) {
        for (pos, kind) in extreme_positions(&values) {
            prop_assert!(pos > 0 && pos < values.len() - 1);
            match kind {
                wms_core::extremes::ExtremeKind::Max => {
                    prop_assert!(values[pos] >= values[pos - 1]);
                }
                wms_core::extremes::ExtremeKind::Min => {
                    prop_assert!(values[pos] <= values[pos - 1]);
                }
            }
        }
    }

    #[test]
    fn subset_contiguous_within_radius(
        values in prop::collection::vec(-1.0f64..1.0, 3..100),
        pos_frac in 0.0f64..1.0,
        radius in 0.001f64..0.5,
    ) {
        let pos = ((values.len() - 1) as f64 * pos_frac) as usize;
        let r = characteristic_subset(&values, pos, radius);
        prop_assert!(r.contains(&pos));
        for i in r.clone() {
            prop_assert!((values[i] - values[pos]).abs() < radius);
        }
        // Maximality: the items just outside violate the radius (or hit
        // the slice boundary).
        if r.start > 0 {
            prop_assert!((values[r.start - 1] - values[pos]).abs() >= radius);
        }
        if r.end < values.len() {
            prop_assert!((values[r.end] - values[pos]).abs() >= radius);
        }
    }

    #[test]
    fn scan_subsets_always_contain_their_extreme(
        values in prop::collection::vec(-1.0f64..1.0, 3..80),
        radius in 0.01f64..0.3,
    ) {
        for e in scan(&values, radius) {
            prop_assert!(e.subset.contains(&e.pos));
            prop_assert_eq!(e.value, values[e.pos]);
        }
    }

    #[test]
    fn trim_keeps_pos_and_cap(
        start in 0usize..50,
        len in 1usize..60,
        pos_off in 0usize..60,
        cap in 1usize..20,
    ) {
        let range = start..(start + len);
        let pos = start + pos_off.min(len - 1);
        let t = trim_around(range.clone(), pos, cap);
        prop_assert!(t.contains(&pos));
        prop_assert!(t.len() <= cap.max(1).min(len).max(1));
        prop_assert!(t.start >= range.start && t.end <= range.end);
    }

    #[test]
    fn vote_verdict_reflects_majority(t in 0u32..50, f in 0u32..50) {
        let v = Vote { true_votes: t, false_votes: f };
        match v.verdict() {
            Some(true) => prop_assert!(t > f),
            Some(false) => prop_assert!(f > t),
            None => prop_assert_eq!(t, f),
        }
    }

    #[test]
    fn labels_deterministic_in_history(msbs in prop::collection::vec(0u64..16, 21..40)) {
        let mut a = Labeler::new(5, 2);
        let mut b = Labeler::new(5, 2);
        for &m in &msbs {
            a.push(m);
            b.push(m);
        }
        prop_assert_eq!(a.label(), b.label());
        if let Some(l) = a.label() {
            prop_assert_eq!(l.len(), 6);
            // Leading bit set.
            prop_assert_eq!(l.as_u64() >> 5, 1);
        }
    }

    #[test]
    fn selection_is_pure_function(key in any::<u64>(), x in 0.001f64..0.499, wm_len in 1usize..8) {
        let p = WmParams { selection_modulus: 16, ..WmParams::default() };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(key))).unwrap();
        let raw = s.codec.quantize(x);
        let first = s.select(raw, wm_len);
        prop_assert_eq!(s.select(raw, wm_len), first);
        if let Some(i) = first {
            prop_assert!(i < wm_len);
        }
    }
}
