//! Deterministic case generation for the shim.

/// Number of generated cases per property (default 64, overridable with
/// the `PROPTEST_CASES` environment variable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Splitmix64 generator seeded from the test name, so every test draws an
/// independent but fully reproducible stream.
#[derive(Debug, Clone)]
pub struct ShimRng {
    state: u64,
}

impl ShimRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
