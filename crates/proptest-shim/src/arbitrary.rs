//! `any::<T>()` for the primitive types the tests draw.

use crate::strategy::Strategy;
use crate::test_runner::ShimRng;
use std::marker::PhantomData;

/// Strategy producing uniformly random values of `T` over its full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Returns the full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ShimRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut ShimRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut ShimRng) -> f64 {
        // Finite, roughly symmetric around zero — good enough for tests
        // that want "some f64"; the real crate draws special values too.
        (rng.unit_f64() - 0.5) * 2e12
    }
}
