//! Choice strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::ShimRng;

/// Strategy drawing uniformly from a fixed, non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut ShimRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
