//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::ShimRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec()`], mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut ShimRng) -> Self::Value {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
