//! # proptest (offline shim)
//!
//! A minimal, dependency-free stand-in for the real
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored into the
//! workspace because the build environment has no access to crates.io
//! (see `DESIGN.md` § "Offline dependency policy").
//!
//! It implements exactly the API subset the `wms` property tests use:
//!
//! * the [`proptest!`] macro with `name(arg in strategy, ...) { body }`
//!   test functions;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * range strategies (`lo..hi`, `lo..=hi`) over the built-in numeric
//!   types;
//! * [`collection::vec`] and [`sample::select`].
//!
//! Unlike the real crate there is **no shrinking** and no persisted
//! failure file: cases are generated from a deterministic splitmix64
//! stream seeded by the test name, so failures reproduce exactly on every
//! run. The case count defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Items the tests glob-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub use crate as prop;
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over
/// [`test_runner::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::ShimRng::from_name(stringify!($name));
                for __case in 0..$crate::test_runner::cases() {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body (no shrinking; panics
/// like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when the precondition fails.
///
/// Must appear directly inside the [`proptest!`] body (the body runs in
/// its own closure, so `return` abandons only this case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
