//! The [`Strategy`] trait and its range implementations.

use crate::test_runner::ShimRng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values, mirroring `proptest::strategy::Strategy`
/// in spirit: here simply "sample one value from an RNG".
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut ShimRng) -> Self::Value;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64) - (lo as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(width + 1) as $t)
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(width) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(width + 1) as i64) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut ShimRng) -> f64 {
        assert!(self.start <= self.end, "inverted range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut ShimRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut ShimRng) -> f32 {
        assert!(self.start <= self.end, "inverted range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}
