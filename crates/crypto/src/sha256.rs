//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The modern default recommendation for new deployments of the scheme;
//! the paper predates SHA-2 ubiquity but its construction is hash-agnostic.

use crate::digest::{md_padding_into, Digest, StreamHasher};

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 state.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256 {
    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize_bytes()
    }

    /// Single-compression digest of a caller-padded one-block message;
    /// see `Md5::digest_padded_block`.
    pub(crate) fn digest_padded_block(block: &[u8; 64]) -> [u8; 32] {
        let mut state = [
            0x6a09_e667u32,
            0xbb67_ae85,
            0x3c6e_f372,
            0xa54f_f53a,
            0x510e_527f,
            0x9b05_688c,
            0x1f83_d9ab,
            0x5be0_cd19,
        ];
        Self::compress(&mut state, block);
        let mut out = [0u8; 32];
        for (i, w) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Finalizes into a stack array — the allocation-free twin of
    /// [`Digest::finalize`], used by the keyed-hash hot path.
    pub fn finalize_bytes(mut self) -> [u8; 32] {
        let mut pad = [0u8; 80];
        let n = md_padding_into(self.total_len, true, &mut pad);
        self.update(&pad[..n]);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;

    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_bytes().to_vec()
    }
}

/// [`StreamHasher`] adaptor for SHA-256.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha256Hasher;

impl StreamHasher for Sha256Hasher {
    fn hash(&self, data: &[u8]) -> Vec<u8> {
        Sha256::digest(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "sha256"
    }

    fn output_len(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// FIPS 180-4 vectors.
    #[test]
    fn standard_vectors() {
        let cases: &[(&str, &str)] = &[
            (
                "",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                "abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                to_hex(&Sha256::digest(input.as_bytes())),
                *want,
                "sha256({input:?})"
            );
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&Digest::finalize(h)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..999).map(|i| (i * 13 % 256) as u8).collect();
        let oneshot = Sha256::digest(&data).to_vec();
        for chunk in [1usize, 7, 64, 65, 200] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(Digest::finalize(h), oneshot, "chunk={chunk}");
        }
    }

    #[test]
    fn avalanche_property() {
        let d0 = Sha256::digest(b"extreme");
        let d1 = Sha256::digest(b"extremf");
        let dist: u32 = d0.iter().zip(&d1).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((80..=176).contains(&dist), "hamming distance {dist} of 256");
    }

    #[test]
    fn hasher_trait() {
        let h = Sha256Hasher;
        assert_eq!(h.output_len(), 32);
        assert_eq!(h.name(), "sha256");
        assert_eq!(h.hash(b"abc"), Sha256::digest(b"abc").to_vec());
    }
}
