//! SHA-1 (RFC 3174 / FIPS 180-4), implemented from scratch.
//!
//! Offered as a drop-in alternative to MD5 for the keyed hash `H(V,k)`;
//! the paper names "MD5 or SHA" as candidate instantiations (§2.2).

use crate::digest::{md_padding_into, Digest, StreamHasher};

/// Incremental SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) =
            (state[0], state[1], state[2], state[3], state[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize_bytes()
    }

    /// Single-compression digest of a caller-padded one-block message;
    /// see `Md5::digest_padded_block`.
    pub(crate) fn digest_padded_block(block: &[u8; 64]) -> [u8; 20] {
        let mut state = [
            0x6745_2301u32,
            0xefcd_ab89,
            0x98ba_dcfe,
            0x1032_5476,
            0xc3d2_e1f0,
        ];
        Self::compress(&mut state, block);
        let mut out = [0u8; 20];
        for (i, w) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Finalizes into a stack array — the allocation-free twin of
    /// [`Digest::finalize`], used by the keyed-hash hot path.
    pub fn finalize_bytes(mut self) -> [u8; 20] {
        let mut pad = [0u8; 80];
        let n = md_padding_into(self.total_len, true, &mut pad);
        self.update(&pad[..n]);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_bytes().to_vec()
    }
}

/// [`StreamHasher`] adaptor for SHA-1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha1Hasher;

impl StreamHasher for Sha1Hasher {
    fn hash(&self, data: &[u8]) -> Vec<u8> {
        Sha1::digest(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "sha1"
    }

    fn output_len(&self) -> usize {
        20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// FIPS / RFC 3174 vectors.
    #[test]
    fn standard_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                to_hex(&Sha1::digest(input.as_bytes())),
                *want,
                "sha1({input:?})"
            );
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4 long test: 10^6 repetitions of 'a'.
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&Digest::finalize(h)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..777).map(|i| (i * 7 % 256) as u8).collect();
        let oneshot = Sha1::digest(&data).to_vec();
        for chunk in [1usize, 5, 64, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(Digest::finalize(h), oneshot, "chunk={chunk}");
        }
    }

    #[test]
    fn avalanche_property() {
        let d0 = Sha1::digest(b"stream");
        let d1 = Sha1::digest(b"strean");
        let dist: u32 = d0.iter().zip(&d1).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((40..=120).contains(&dist), "hamming distance {dist} of 160");
    }

    #[test]
    fn hasher_trait() {
        let h = Sha1Hasher;
        assert_eq!(h.output_len(), 20);
        assert_eq!(h.name(), "sha1");
        assert_eq!(h.hash(b"abc"), Sha1::digest(b"abc").to_vec());
    }
}
