//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! MD5 is the hash the paper's proof-of-concept (`wms.*`) used in 2004.
//! It is cryptographically broken for collision resistance today, but the
//! watermarking scheme only relies on one-wayness and avalanche behaviour
//! (§2.2); we keep it for faithful reproduction and provide SHA-1/SHA-256
//! as drop-in alternatives.

use crate::digest::{md_padding_into, Digest, StreamHasher};

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i+1))).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Md5 {
    /// The compression function, with the four 16-step rounds fully
    /// unrolled (RFC 1321 appendix style). The obvious `for i in 0..64`
    /// loop with a `match i / 16` costs ~2× in the hot path: the embed
    /// search spends almost all of its time here, one block per
    /// convention code.
    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        // One MD5 step: a = b + ((a + f + m[g] + K[i]) <<< s).
        macro_rules! step {
            ($a:ident, $b:ident, $c:ident, $d:ident, $f:expr, $g:expr, $i:expr) => {
                $a = $b.wrapping_add(
                    $a.wrapping_add($f)
                        .wrapping_add(K[$i])
                        .wrapping_add(m[$g])
                        .rotate_left(S[$i]),
                );
            };
        }
        // Four steps with the canonical a→d→c→b register rotation; all
        // indices are const expressions, so K/S/m lookups fold away.
        macro_rules! quad {
            ($f:ident, $g0:expr, $g1:expr, $g2:expr, $g3:expr, $i:expr) => {
                step!(a, b, c, d, $f(b, c, d), $g0, $i);
                step!(d, a, b, c, $f(a, b, c), $g1, $i + 1);
                step!(c, d, a, b, $f(d, a, b), $g2, $i + 2);
                step!(b, c, d, a, $f(c, d, a), $g3, $i + 3);
            };
        }
        #[inline(always)]
        fn f1(x: u32, y: u32, z: u32) -> u32 {
            (x & y) | (!x & z)
        }
        #[inline(always)]
        fn f2(x: u32, y: u32, z: u32) -> u32 {
            (z & x) | (!z & y)
        }
        #[inline(always)]
        fn f3(x: u32, y: u32, z: u32) -> u32 {
            x ^ y ^ z
        }
        #[inline(always)]
        fn f4(x: u32, y: u32, z: u32) -> u32 {
            y ^ (x | !z)
        }
        quad!(f1, 0, 1, 2, 3, 0);
        quad!(f1, 4, 5, 6, 7, 4);
        quad!(f1, 8, 9, 10, 11, 8);
        quad!(f1, 12, 13, 14, 15, 12);
        quad!(f2, 1, 6, 11, 0, 16);
        quad!(f2, 5, 10, 15, 4, 20);
        quad!(f2, 9, 14, 3, 8, 24);
        quad!(f2, 13, 2, 7, 12, 28);
        quad!(f3, 5, 8, 11, 14, 32);
        quad!(f3, 1, 4, 7, 10, 36);
        quad!(f3, 13, 0, 3, 6, 40);
        quad!(f3, 9, 12, 15, 2, 44);
        quad!(f4, 0, 7, 14, 5, 48);
        quad!(f4, 12, 3, 10, 1, 52);
        quad!(f4, 8, 15, 6, 13, 56);
        quad!(f4, 4, 11, 2, 9, 60);
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        h.finalize_bytes()
    }

    /// Digest of a message that, *with its Merkle–Damgård padding already
    /// applied by the caller*, spans exactly one 64-byte block: a single
    /// compression from the IV. The compiled keyed-hash fast path
    /// (`keyed::CompiledU64Hash`) patches a precomputed padded block and
    /// calls this per hash.
    pub(crate) fn digest_padded_block(block: &[u8; 64]) -> [u8; 16] {
        let mut state = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
        Self::compress(&mut state, block);
        let mut out = [0u8; 16];
        for (i, w) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// [`digest_padded_block`](Self::digest_padded_block) compressions
    /// over `L` blocks at once, each result XOR-folded to a `u64` (the
    /// `fold_u64` reduction). Lane `l` equals
    /// `fold_u64(&digest_padded_block(blocks[l]))` bit for bit.
    /// Test-only reference for [`fold_words`](Self::fold_words), which
    /// production callers feed with pre-assembled lane-major words.
    #[cfg(test)]
    pub(crate) fn fold_padded_blocks<const L: usize>(blocks: &[[u8; 64]; L]) -> [u64; L] {
        // Message words, lane-major: m[w][lane].
        let mut m = [[0u32; L]; 16];
        for (w, mw) in m.iter_mut().enumerate() {
            for (l, block) in blocks.iter().enumerate() {
                mw[l] = u32::from_le_bytes([
                    block[4 * w],
                    block[4 * w + 1],
                    block[4 * w + 2],
                    block[4 * w + 3],
                ]);
            }
        }
        Self::fold_words(&m)
    }

    /// `L` one-block compressions over lane-major message words, each
    /// digest XOR-folded to a `u64`. MD5's step chain is strictly serial,
    /// so a single hash is latency-bound; independent lanes expose the
    /// instruction-level (and, with auto-vectorization, SIMD) parallelism
    /// the hardware already has. `L = 4` auto-vectorizes to one SSE2
    /// chain (which already saturates the vector ALU ports — wider lanes
    /// on the baseline target gain nothing); when the CPU supports AVX2
    /// the `L = 8` body recompiles to one 8-wide YMM chain with the same
    /// instruction count, doubling per-hash throughput.
    pub(crate) fn fold_words<const L: usize>(m: &[[u32; L]; 16]) -> [u64; L] {
        #[cfg(target_arch = "x86_64")]
        if L >= 8 {
            // SAFETY: calling a `#[target_feature(...)]` function is
            // sound exactly when the CPU supports those features, which
            // each branch condition verifies at runtime (the detection
            // macro caches, so steady-state cost is one atomic load).
            #[allow(unsafe_code)]
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return unsafe { Self::fold_words_avx512(m) };
            } else if std::arch::is_x86_feature_detected!("avx2") {
                return unsafe { Self::fold_words_avx2(m) };
            }
        }
        Self::fold_words_portable(m)
    }

    /// [`fold_words_portable`](Self::fold_words_portable) recompiled with
    /// AVX2 enabled, so the auto-vectorizer emits YMM (8-lane) chains.
    /// Callers must verify `avx2` support first.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn fold_words_avx2<const L: usize>(m: &[[u32; L]; 16]) -> [u64; L] {
        Self::fold_words_portable(m)
    }

    /// [`fold_words_portable`](Self::fold_words_portable) recompiled with
    /// AVX-512 enabled: 16-lane ZMM chains, and the per-step rotate
    /// becomes a single native `vprold` at every width (vs shift-shift-or
    /// elsewhere). Callers must verify `avx512f`+`avx512vl` support first.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512vl")]
    fn fold_words_avx512<const L: usize>(m: &[[u32; L]; 16]) -> [u64; L] {
        Self::fold_words_portable(m)
    }

    /// The feature-agnostic `L`-lane body; `#[inline(always)]` so the
    /// target-feature wrappers recompile it under their own ISA.
    #[inline(always)]
    fn fold_words_portable<const L: usize>(m: &[[u32; L]; 16]) -> [u64; L] {
        #[inline(always)]
        fn vadd<const L: usize>(x: [u32; L], y: [u32; L]) -> [u32; L] {
            let mut r = [0u32; L];
            let mut l = 0;
            while l < L {
                r[l] = x[l].wrapping_add(y[l]);
                l += 1;
            }
            r
        }
        #[inline(always)]
        fn vrotl<const L: usize>(x: [u32; L], s: u32) -> [u32; L] {
            let mut r = [0u32; L];
            let mut l = 0;
            while l < L {
                r[l] = x[l].rotate_left(s);
                l += 1;
            }
            r
        }
        #[inline(always)]
        fn vsplat<const L: usize>(k: u32) -> [u32; L] {
            [k; L]
        }
        let (mut a, mut b, mut c, mut d) = (
            vsplat::<L>(0x6745_2301),
            vsplat::<L>(0xefcd_ab89),
            vsplat::<L>(0x98ba_dcfe),
            vsplat::<L>(0x1032_5476),
        );
        let (ia, ib, ic, id) = (a, b, c, d);
        macro_rules! step {
            ($a:ident, $b:ident, $c:ident, $d:ident, $f:expr, $g:expr, $i:expr) => {
                $a = vadd(
                    vrotl(vadd(vadd(vadd($a, $f), vsplat(K[$i])), m[$g]), S[$i]),
                    $b,
                );
            };
        }
        macro_rules! quad {
            ($f:ident, $g0:expr, $g1:expr, $g2:expr, $g3:expr, $i:expr) => {
                step!(a, b, c, d, $f(b, c, d), $g0, $i);
                step!(d, a, b, c, $f(a, b, c), $g1, $i + 1);
                step!(c, d, a, b, $f(d, a, b), $g2, $i + 2);
                step!(b, c, d, a, $f(c, d, a), $g3, $i + 3);
            };
        }
        #[inline(always)]
        fn f1<const L: usize>(x: [u32; L], y: [u32; L], z: [u32; L]) -> [u32; L] {
            let mut r = [0u32; L];
            let mut l = 0;
            while l < L {
                r[l] = (x[l] & y[l]) | (!x[l] & z[l]);
                l += 1;
            }
            r
        }
        #[inline(always)]
        fn f2<const L: usize>(x: [u32; L], y: [u32; L], z: [u32; L]) -> [u32; L] {
            f1(z, x, y)
        }
        #[inline(always)]
        fn f3<const L: usize>(x: [u32; L], y: [u32; L], z: [u32; L]) -> [u32; L] {
            let mut r = [0u32; L];
            let mut l = 0;
            while l < L {
                r[l] = x[l] ^ y[l] ^ z[l];
                l += 1;
            }
            r
        }
        #[inline(always)]
        fn f4<const L: usize>(x: [u32; L], y: [u32; L], z: [u32; L]) -> [u32; L] {
            let mut r = [0u32; L];
            let mut l = 0;
            while l < L {
                r[l] = y[l] ^ (x[l] | !z[l]);
                l += 1;
            }
            r
        }
        quad!(f1, 0, 1, 2, 3, 0);
        quad!(f1, 4, 5, 6, 7, 4);
        quad!(f1, 8, 9, 10, 11, 8);
        quad!(f1, 12, 13, 14, 15, 12);
        quad!(f2, 1, 6, 11, 0, 16);
        quad!(f2, 5, 10, 15, 4, 20);
        quad!(f2, 9, 14, 3, 8, 24);
        quad!(f2, 13, 2, 7, 12, 28);
        quad!(f3, 5, 8, 11, 14, 32);
        quad!(f3, 1, 4, 7, 10, 36);
        quad!(f3, 13, 0, 3, 6, 40);
        quad!(f3, 9, 12, 15, 2, 44);
        quad!(f4, 0, 7, 14, 5, 48);
        quad!(f4, 12, 3, 10, 1, 52);
        quad!(f4, 8, 15, 6, 13, 56);
        quad!(f4, 4, 11, 2, 9, 60);
        let a = vadd(a, ia);
        let b = vadd(b, ib);
        let c = vadd(c, ic);
        let d = vadd(d, id);
        // fold_u64 of the little-endian digest: (a | b<<32) ^ (c | d<<32).
        let mut out = [0u64; L];
        for l in 0..L {
            let lo = (a[l] as u64) | ((b[l] as u64) << 32);
            let hi = (c[l] as u64) | ((d[l] as u64) << 32);
            out[l] = lo ^ hi;
        }
        out
    }

    /// Finalizes into a stack array — the allocation-free twin of
    /// [`Digest::finalize`], used by the keyed-hash hot path.
    pub fn finalize_bytes(mut self) -> [u8; 16] {
        let mut pad = [0u8; 80];
        let n = md_padding_into(self.total_len, false, &mut pad);
        self.update(&pad[..n]);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 16];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;

    fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_bytes().to_vec()
    }
}

/// [`StreamHasher`] adaptor for MD5.
#[derive(Debug, Clone, Copy, Default)]
pub struct Md5Hasher;

impl StreamHasher for Md5Hasher {
    fn hash(&self, data: &[u8]) -> Vec<u8> {
        Md5::digest(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "md5"
    }

    fn output_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                to_hex(&Md5::digest(input.as_bytes())),
                *want,
                "md5({input:?})"
            );
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 130] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(Digest::finalize(h), oneshot.to_vec(), "chunk={chunk}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 55/56/64 padding edges.
        let known: &[(usize, &str)] = &[
            (55, "04364420e25c512fd958a70738aa8f72"),
            (56, "668a72d5ba17f08e62dabcafad6db14b"),
            (64, "c1bb4f81d892b2d57947682aeb252456"),
        ];
        for &(len, want) in known {
            let data = vec![b'x'; len];
            assert_eq!(to_hex(&Md5::digest(&data)), want, "len={len}");
        }
    }

    #[test]
    fn avalanche_property() {
        // Flipping one input bit should flip roughly half the output bits —
        // the property §2.2 of the paper relies on.
        let base = b"sensor stream watermarking".to_vec();
        let d0 = Md5::digest(&base);
        let mut flipped = base.clone();
        flipped[0] ^= 1;
        let d1 = Md5::digest(&flipped);
        let dist: u32 = d0.iter().zip(&d1).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((32..=96).contains(&dist), "hamming distance {dist} of 128");
    }

    #[test]
    fn hasher_trait_matches_direct() {
        let h = Md5Hasher;
        assert_eq!(h.hash(b"abc"), Md5::digest(b"abc").to_vec());
        assert_eq!(h.output_len(), 16);
        assert_eq!(h.name(), "md5");
    }

    #[test]
    fn fold_lanes_match_single_lane_digests() {
        fn check<const L: usize>() {
            let mut blocks = [[0u8; 64]; L];
            for (l, b) in blocks.iter_mut().enumerate() {
                for (i, byte) in b.iter_mut().enumerate() {
                    *byte = ((i * 37 + l * 101 + 7) % 256) as u8;
                }
            }
            let folded = Md5::fold_padded_blocks(&blocks);
            for l in 0..L {
                let single = crate::digest::fold_u64(&Md5::digest_padded_block(&blocks[l]));
                assert_eq!(folded[l], single, "L={L} lane {l}");
            }
        }
        check::<1>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn digest_padded_block_equals_oneshot_on_padded_input() {
        // A 42-byte message padded by hand must hash identically through
        // the one-block path and the incremental path.
        let msg: Vec<u8> = (0u8..42).collect();
        let mut block = [0u8; 64];
        block[..42].copy_from_slice(&msg);
        block[42] = 0x80;
        block[56..64].copy_from_slice(&(42u64 * 8).to_le_bytes());
        assert_eq!(Md5::digest_padded_block(&block), Md5::digest(&msg));
    }

    #[test]
    fn hash_u64_is_stable_and_spread() {
        let h = Md5Hasher;
        let a = h.hash_u64(b"a");
        let b = h.hash_u64(b"b");
        assert_ne!(a, b);
        assert_eq!(a, h.hash_u64(b"a"));
    }
}
