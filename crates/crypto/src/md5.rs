//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! MD5 is the hash the paper's proof-of-concept (`wms.*`) used in 2004.
//! It is cryptographically broken for collision resistance today, but the
//! watermarking scheme only relies on one-wayness and avalanche behaviour
//! (§2.2); we keep it for faithful reproduction and provide SHA-1/SHA-256
//! as drop-in alternatives.

use crate::digest::{md_padding, Digest, StreamHasher};

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i+1))).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Md5 {
    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        let v = Digest::finalize(h);
        let mut out = [0u8; 16];
        out.copy_from_slice(&v);
        out
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;

    fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let pad = md_padding(self.total_len, false);
        // update() would re-count the padding; bypass the length tally.
        let saved = self.total_len;
        self.update(&pad);
        self.total_len = saved;
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = Vec::with_capacity(16);
        for w in self.state {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// [`StreamHasher`] adaptor for MD5.
#[derive(Debug, Clone, Copy, Default)]
pub struct Md5Hasher;

impl StreamHasher for Md5Hasher {
    fn hash(&self, data: &[u8]) -> Vec<u8> {
        Md5::digest(data).to_vec()
    }

    fn name(&self) -> &'static str {
        "md5"
    }

    fn output_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                to_hex(&Md5::digest(input.as_bytes())),
                *want,
                "md5({input:?})"
            );
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 130] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(Digest::finalize(h), oneshot.to_vec(), "chunk={chunk}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 55/56/64 padding edges.
        let known: &[(usize, &str)] = &[
            (55, "04364420e25c512fd958a70738aa8f72"),
            (56, "668a72d5ba17f08e62dabcafad6db14b"),
            (64, "c1bb4f81d892b2d57947682aeb252456"),
        ];
        for &(len, want) in known {
            let data = vec![b'x'; len];
            assert_eq!(to_hex(&Md5::digest(&data)), want, "len={len}");
        }
    }

    #[test]
    fn avalanche_property() {
        // Flipping one input bit should flip roughly half the output bits —
        // the property §2.2 of the paper relies on.
        let base = b"sensor stream watermarking".to_vec();
        let d0 = Md5::digest(&base);
        let mut flipped = base.clone();
        flipped[0] ^= 1;
        let d1 = Md5::digest(&flipped);
        let dist: u32 = d0.iter().zip(&d1).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((32..=96).contains(&dist), "hamming distance {dist} of 128");
    }

    #[test]
    fn hasher_trait_matches_direct() {
        let h = Md5Hasher;
        assert_eq!(h.hash(b"abc"), Md5::digest(b"abc").to_vec());
        assert_eq!(h.output_len(), 16);
        assert_eq!(h.name(), "md5");
    }

    #[test]
    fn hash_u64_is_stable_and_spread() {
        let h = Md5Hasher;
        let a = h.hash_u64(b"a");
        let b = h.hash_u64(b"b");
        assert_ne!(a, b);
        assert_eq!(a, h.hash_u64(b"a"));
    }
}
