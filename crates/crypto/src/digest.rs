//! Common digest abstraction shared by MD5 / SHA-1 / SHA-256.
//!
//! The watermarking core is hash-agnostic: every encoding takes a
//! [`StreamHasher`], so the paper's MD5 proof-of-concept configuration and
//! stronger modern choices are interchangeable.

/// Incremental cryptographic hash over a byte stream.
pub trait Digest {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;

    /// Fresh hasher in its initial state.
    fn new() -> Self;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);

    /// Finalizes and returns the digest. Consumes the hasher.
    fn finalize(self) -> Vec<u8>;
}

/// Object-safe hash-function handle used by the watermarking core.
///
/// Implementations must be *one-way* and *avalanche-complete* in the sense
/// of §2.2 of the paper: flipping one input bit flips ~half of the output
/// bits. All three provided algorithms qualify.
pub trait StreamHasher: Send + Sync {
    /// Hashes `data`, returning the full digest.
    fn hash(&self, data: &[u8]) -> Vec<u8>;

    /// Short human-readable algorithm name, e.g. `"md5"`.
    fn name(&self) -> &'static str;

    /// Digest length in bytes.
    fn output_len(&self) -> usize;

    /// Hashes `data` and folds the digest into a `u64` (little-endian XOR
    /// of 8-byte lanes). This is the integer the encodings reduce with
    /// `mod θ` / `mod α` (§3.2).
    fn hash_u64(&self, data: &[u8]) -> u64 {
        fold_u64(&self.hash(data))
    }
}

/// XOR-fold of 8-byte little-endian lanes — the single digest→`u64`
/// reduction every keyed derivation uses. Shared so the midstate fast
/// path and the generic [`StreamHasher`] path cannot diverge.
pub fn fold_u64(digest: &[u8]) -> u64 {
    let mut acc = 0u64;
    for chunk in digest.chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        acc ^= u64::from_le_bytes(lane);
    }
    acc
}

/// Lowercase hex encoding of a digest.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Parses lowercase/uppercase hex into bytes. Returns `None` on odd length
/// or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

/// Standard Merkle–Damgård length padding shared by MD5/SHA-1/SHA-256:
/// append 0x80, zero-fill to 56 mod 64, then the bit length as 8 bytes
/// (little-endian for MD5, big-endian for the SHAs). Writes into a stack
/// buffer (max padding is 72 bytes) and returns the padding length, so
/// finalization performs no heap allocation.
pub(crate) fn md_padding_into(total_len: u64, big_endian_len: bool, buf: &mut [u8; 80]) -> usize {
    let bit_len = total_len.wrapping_mul(8);
    let rem = (total_len % 64) as usize;
    let pad_zeroes = if rem < 56 { 55 - rem } else { 119 - rem };
    let len = 1 + pad_zeroes + 8;
    buf[0] = 0x80;
    buf[1..1 + pad_zeroes].fill(0);
    let len_bytes = if big_endian_len {
        bit_len.to_be_bytes()
    } else {
        bit_len.to_le_bytes()
    };
    buf[1 + pad_zeroes..len].copy_from_slice(&len_bytes);
    len
}

/// Heap-allocating convenience wrapper around [`md_padding_into`].
#[cfg(test)]
pub(crate) fn md_padding(total_len: u64, big_endian_len: bool) -> Vec<u8> {
    let mut buf = [0u8; 80];
    let len = md_padding_into(total_len, big_endian_len, &mut buf);
    buf[..len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = [0x00u8, 0x01, 0xab, 0xff, 0x7f];
        let hex = to_hex(&data);
        assert_eq!(hex, "0001abff7f");
        assert_eq!(from_hex(&hex).unwrap(), data);
        assert_eq!(from_hex("0001ABFF7F").unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn padding_lengths_always_block_aligned() {
        for len in 0..300u64 {
            let pad = md_padding(len, true);
            assert_eq!((len as usize + pad.len()) % 64, 0, "len={len}");
            assert!(pad.len() >= 9, "must fit 0x80 + 8 length bytes");
            assert_eq!(pad[0], 0x80);
        }
    }

    #[test]
    fn padding_endianness() {
        let le = md_padding(3, false);
        let be = md_padding(3, true);
        // 3 bytes = 24 bits.
        assert_eq!(&le[le.len() - 8..], &24u64.to_le_bytes());
        assert_eq!(&be[be.len() - 8..], &24u64.to_be_bytes());
    }
}
