//! # wms-crypto
//!
//! Cryptographic substrate for the `wms` workspace: from-scratch MD5
//! (RFC 1321), SHA-1 (RFC 3174) and SHA-256 (FIPS 180-4), all validated
//! against the official test vectors, plus the paper's keyed one-way
//! construction `H(V, k) = crypto_hash(k ; V ; k)` (§2.2 of *Resilient
//! Rights Protection for Sensor Streams*, VLDB 2004).
//!
//! The watermarking core only consumes the [`StreamHasher`] /
//! [`KeyedHash`] abstractions, so the hash algorithm is a configuration
//! choice: MD5 reproduces the paper's proof of concept, SHA-256 is the
//! recommended modern default.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod digest;
pub mod keyed;
pub mod md5;
pub mod sha1;
pub mod sha256;

pub use crc32::{crc32, Crc32};
pub use digest::{fold_u64, from_hex, to_hex, Digest, StreamHasher};
pub use keyed::{CompiledU64Hash, Key, KeyedHash};
pub use md5::{Md5, Md5Hasher};
pub use sha1::{Sha1, Sha1Hasher};
pub use sha256::{Sha256, Sha256Hasher};
