//! The paper's keyed one-way construction `H(V, k) = crypto_hash(k ; V ; k)`
//! (§2.2, where ";" is concatenation).
//!
//! Both the extreme-selection criterion (`H(msb(ε,β), k1) mod θ`, §3.2) and
//! the bit-position / bit-value derivations reduce this keyed hash modulo
//! small secret integers. [`KeyedHash`] packages the construction together
//! with convenience reducers so embedder and detector cannot diverge in how
//! they serialize inputs.

use crate::digest::StreamHasher;
use std::sync::Arc;

/// A secret watermarking key (k₁ in the paper).
///
/// Wraps opaque bytes; deliberately does not implement `Display` to make
/// accidental logging of key material harder. `Debug` prints a redacted
/// placeholder.
#[derive(Clone, PartialEq, Eq)]
pub struct Key(Vec<u8>);

impl Key {
    /// Key from raw bytes (caller-provided secret).
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Key(bytes.into())
    }

    /// Key from a u64 (convenient for tests and experiments; real
    /// deployments should use high-entropy byte keys).
    pub fn from_u64(k: u64) -> Self {
        Key(k.to_le_bytes().to_vec())
    }

    /// Borrows the key material.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty (legal but insecure; used only in tests).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(<{} bytes redacted>)", self.0.len())
    }
}

/// `H(V, k) = hash(k ; V ; k)` with pluggable hash algorithm.
#[derive(Clone)]
pub struct KeyedHash {
    hasher: Arc<dyn StreamHasher>,
    key: Key,
}

impl std::fmt::Debug for KeyedHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedHash")
            .field("algorithm", &self.hasher.name())
            .field("key", &self.key)
            .finish()
    }
}

impl KeyedHash {
    /// Builds the construction over an arbitrary hash algorithm.
    pub fn new(hasher: Arc<dyn StreamHasher>, key: Key) -> Self {
        KeyedHash { hasher, key }
    }

    /// The paper's configuration: MD5.
    pub fn md5(key: Key) -> Self {
        KeyedHash::new(Arc::new(crate::md5::Md5Hasher), key)
    }

    /// SHA-1 instantiation.
    pub fn sha1(key: Key) -> Self {
        KeyedHash::new(Arc::new(crate::sha1::Sha1Hasher), key)
    }

    /// SHA-256 instantiation (recommended for new deployments).
    pub fn sha256(key: Key) -> Self {
        KeyedHash::new(Arc::new(crate::sha256::Sha256Hasher), key)
    }

    /// Underlying algorithm name.
    pub fn algorithm(&self) -> &'static str {
        self.hasher.name()
    }

    /// Full digest of `k ; V ; k`.
    pub fn hash(&self, value: &[u8]) -> Vec<u8> {
        let k = self.key.as_bytes();
        let mut buf = Vec::with_capacity(2 * k.len() + value.len());
        buf.extend_from_slice(k);
        buf.extend_from_slice(value);
        buf.extend_from_slice(k);
        self.hasher.hash(&buf)
    }

    /// Digest folded to a `u64` (see [`StreamHasher::hash_u64`]).
    pub fn hash_u64(&self, value: &[u8]) -> u64 {
        let d = self.hash(value);
        let mut acc = 0u64;
        for chunk in d.chunks(8) {
            let mut lane = [0u8; 8];
            lane[..chunk.len()].copy_from_slice(chunk);
            acc ^= u64::from_le_bytes(lane);
        }
        acc
    }

    /// `H(V,k) mod m`, the reduction the selection criterion uses.
    /// Panics if `m == 0`.
    pub fn hash_mod(&self, value: &[u8], m: u64) -> u64 {
        assert!(m > 0, "modulus must be positive");
        self.hash_u64(value) % m
    }

    /// The least significant `bits` of the digest, as a u64
    /// (`lsb(H(...), τ)` in the multi-hash convention, §4.3).
    /// `bits` must be in `[1, 64]`.
    pub fn hash_lsb(&self, value: &[u8], bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in [1,64]");
        let h = self.hash_u64(value);
        if bits == 64 {
            h
        } else {
            h & ((1u64 << bits) - 1)
        }
    }
}

/// Serialization helpers shared by embedder and detector.
///
/// The paper hashes structured inputs such as `msb(ε, β)` or
/// `lsb(m_ij, γ) ; label(ε)`. These helpers define the *one* canonical byte
/// encoding both sides use, with domain-separation tags so e.g. a selection
/// hash can never collide with a bit-position hash.
pub mod encode {
    /// Domain tag for the extreme-selection criterion (§3.2).
    pub const DOM_SELECT: u8 = 0x01;
    /// Domain tag for the bit-position derivation (§3.2 / §4.1).
    pub const DOM_BITPOS: u8 = 0x02;
    /// Domain tag for the multi-hash encoding convention (§4.3).
    pub const DOM_MULTIHASH: u8 = 0x03;
    /// Domain tag for the quadratic-residue encoding prime derivation.
    pub const DOM_QUADRES: u8 = 0x04;

    /// Canonical message: `tag || fields`, each field length-prefixed
    /// little-endian so field boundaries are unambiguous.
    pub fn message(tag: u8, fields: &[&[u8]]) -> Vec<u8> {
        let total: usize = fields.iter().map(|f| f.len() + 4).sum();
        let mut out = Vec::with_capacity(1 + total);
        out.push(tag);
        for f in fields {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            out.extend_from_slice(f);
        }
        out
    }

    /// Canonical encoding of a u64 field.
    pub fn u64_bytes(x: u64) -> [u8; 8] {
        x.to_le_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;
    use crate::md5::Md5;

    #[test]
    fn keyed_md5_matches_manual_concatenation() {
        let kh = KeyedHash::md5(Key::from_bytes(b"secret".to_vec()));
        let got = kh.hash(b"value");
        let manual = Md5::digest(b"secretvaluesecret");
        assert_eq!(got, manual.to_vec());
    }

    #[test]
    fn different_keys_give_different_hashes() {
        let a = KeyedHash::md5(Key::from_u64(1));
        let b = KeyedHash::md5(Key::from_u64(2));
        assert_ne!(a.hash_u64(b"x"), b.hash_u64(b"x"));
    }

    #[test]
    fn different_algorithms_give_different_hashes() {
        let k = Key::from_u64(7);
        let md5 = KeyedHash::md5(k.clone());
        let sha = KeyedHash::sha256(k);
        assert_ne!(md5.hash_u64(b"x"), sha.hash_u64(b"x"));
        assert_eq!(md5.algorithm(), "md5");
        assert_eq!(sha.algorithm(), "sha256");
    }

    #[test]
    fn hash_mod_in_range_and_covers() {
        let kh = KeyedHash::md5(Key::from_u64(42));
        let m = 13u64;
        let mut seen = vec![false; m as usize];
        for i in 0..2000u64 {
            let r = kh.hash_mod(&i.to_le_bytes(), m);
            assert!(r < m);
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn hash_mod_roughly_uniform() {
        let kh = KeyedHash::sha256(Key::from_u64(5));
        let m = 8u64;
        let trials = 20_000u64;
        let mut counts = vec![0u32; m as usize];
        for i in 0..trials {
            counts[kh.hash_mod(&i.to_le_bytes(), m) as usize] += 1;
        }
        let expect = trials as f64 / m as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.1, "{c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn hash_mod_zero_panics() {
        KeyedHash::md5(Key::from_u64(0)).hash_mod(b"x", 0);
    }

    #[test]
    fn hash_lsb_masks_correctly() {
        let kh = KeyedHash::md5(Key::from_u64(3));
        let full = kh.hash_u64(b"v");
        assert_eq!(kh.hash_lsb(b"v", 64), full);
        assert_eq!(kh.hash_lsb(b"v", 1), full & 1);
        assert_eq!(kh.hash_lsb(b"v", 16), full & 0xffff);
    }

    #[test]
    fn key_debug_is_redacted() {
        let k = Key::from_bytes(b"super-secret".to_vec());
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("super-secret"));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn canonical_message_is_injective_on_fields() {
        // ("ab", "c") must differ from ("a", "bc") — length prefixes.
        let m1 = encode::message(encode::DOM_SELECT, &[b"ab", b"c"]);
        let m2 = encode::message(encode::DOM_SELECT, &[b"a", b"bc"]);
        assert_ne!(m1, m2);
        // Same fields, different domain tag must differ.
        let m3 = encode::message(encode::DOM_BITPOS, &[b"ab", b"c"]);
        assert_ne!(m1, m3);
    }

    #[test]
    fn empty_key_is_plain_hash() {
        let kh = KeyedHash::md5(Key::from_bytes(Vec::new()));
        assert_eq!(to_hex(&kh.hash(b"abc")), to_hex(&Md5::digest(b"abc")));
        assert!(Key::from_bytes(Vec::new()).is_empty());
    }
}
