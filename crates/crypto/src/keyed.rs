//! The paper's keyed one-way construction `H(V, k) = crypto_hash(k ; V ; k)`
//! (§2.2, where ";" is concatenation).
//!
//! Both the extreme-selection criterion (`H(msb(ε,β), k1) mod θ`, §3.2) and
//! the bit-position / bit-value derivations reduce this keyed hash modulo
//! small secret integers. [`KeyedHash`] packages the construction together
//! with convenience reducers so embedder and detector cannot diverge in how
//! they serialize inputs.

use crate::digest::{fold_u64, Digest, StreamHasher};
use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha256::Sha256;
use std::sync::Arc;

/// A secret watermarking key (k₁ in the paper).
///
/// Wraps opaque bytes; deliberately does not implement `Display` to make
/// accidental logging of key material harder. `Debug` prints a redacted
/// placeholder.
#[derive(Clone, PartialEq, Eq)]
pub struct Key(Vec<u8>);

impl Key {
    /// Key from raw bytes (caller-provided secret).
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Key(bytes.into())
    }

    /// Key from a u64 (convenient for tests and experiments; real
    /// deployments should use high-entropy byte keys).
    pub fn from_u64(k: u64) -> Self {
        Key(k.to_le_bytes().to_vec())
    }

    /// Borrows the key material.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty (legal but insecure; used only in tests).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(<{} bytes redacted>)", self.0.len())
    }
}

/// Precomputed keyed midstate: an incremental hasher that has already
/// absorbed the key prefix of `hash(k ; V ; k)`. Cloning is a flat stack
/// copy (no heap), so the steady-state keyed hash clones the midstate,
/// streams `V` and the key suffix through it, and finalizes into a stack
/// array — zero allocation and no re-absorption of the prefix.
#[derive(Debug, Clone)]
enum Midstate {
    Md5(Md5),
    Sha1(Sha1),
    Sha256(Sha256),
}

impl Midstate {
    fn primed(mut st: Midstate, key: &Key) -> Midstate {
        st.update(key.as_bytes());
        st
    }

    fn update(&mut self, data: &[u8]) {
        match self {
            Midstate::Md5(h) => h.update(data),
            Midstate::Sha1(h) => h.update(data),
            Midstate::Sha256(h) => h.update(data),
        }
    }

    fn finalize_fold_u64(self) -> u64 {
        match self {
            Midstate::Md5(h) => fold_u64(&h.finalize_bytes()),
            Midstate::Sha1(h) => fold_u64(&h.finalize_bytes()),
            Midstate::Sha256(h) => fold_u64(&h.finalize_bytes()),
        }
    }

    fn finalize_append(self, out: &mut Vec<u8>) {
        match self {
            Midstate::Md5(h) => out.extend_from_slice(&h.finalize_bytes()),
            Midstate::Sha1(h) => out.extend_from_slice(&h.finalize_bytes()),
            Midstate::Sha256(h) => out.extend_from_slice(&h.finalize_bytes()),
        }
    }
}

/// `H(V, k) = hash(k ; V ; k)` with pluggable hash algorithm.
#[derive(Clone)]
pub struct KeyedHash {
    hasher: Arc<dyn StreamHasher>,
    key: Key,
    /// Key-primed incremental state for the built-in algorithms; `None`
    /// for externally supplied hashers, which fall back to the buffered
    /// `k ; V ; k` construction.
    midstate: Option<Midstate>,
}

impl std::fmt::Debug for KeyedHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedHash")
            .field("algorithm", &self.hasher.name())
            .field("key", &self.key)
            .finish()
    }
}

impl KeyedHash {
    /// Builds the construction over an arbitrary hash algorithm. External
    /// hashers have no midstate fast path (the shape of their incremental
    /// state is unknown); the built-in constructors
    /// ([`md5`](Self::md5)/[`sha1`](Self::sha1)/[`sha256`](Self::sha256))
    /// do, and should be preferred.
    pub fn new(hasher: Arc<dyn StreamHasher>, key: Key) -> Self {
        KeyedHash {
            hasher,
            key,
            midstate: None,
        }
    }

    /// The paper's configuration: MD5.
    pub fn md5(key: Key) -> Self {
        let midstate = Some(Midstate::primed(Midstate::Md5(Md5::new()), &key));
        KeyedHash {
            hasher: Arc::new(crate::md5::Md5Hasher),
            key,
            midstate,
        }
    }

    /// SHA-1 instantiation.
    pub fn sha1(key: Key) -> Self {
        let midstate = Some(Midstate::primed(Midstate::Sha1(Sha1::new()), &key));
        KeyedHash {
            hasher: Arc::new(crate::sha1::Sha1Hasher),
            key,
            midstate,
        }
    }

    /// SHA-256 instantiation (recommended for new deployments).
    pub fn sha256(key: Key) -> Self {
        let midstate = Some(Midstate::primed(Midstate::Sha256(Sha256::new()), &key));
        KeyedHash {
            hasher: Arc::new(crate::sha256::Sha256Hasher),
            key,
            midstate,
        }
    }

    /// Underlying algorithm name.
    pub fn algorithm(&self) -> &'static str {
        self.hasher.name()
    }

    /// Whether the precomputed-midstate fast path is active.
    pub fn has_midstate(&self) -> bool {
        self.midstate.is_some()
    }

    /// A copy with the midstate fast path disabled — every call rebuilds
    /// the full `k ; V ; k` buffer. Kept for before/after benchmarking of
    /// the hot path; produces bit-identical digests.
    pub fn without_midstate(&self) -> Self {
        KeyedHash {
            hasher: Arc::clone(&self.hasher),
            key: self.key.clone(),
            midstate: None,
        }
    }

    /// Full digest of `k ; V ; k`.
    pub fn hash(&self, value: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.hasher.output_len());
        self.hash_into(value, &mut out);
        out
    }

    /// Appends the digest of `k ; V ; k` to `out` (cleared first). With a
    /// midstate this performs no allocation beyond what `out` already
    /// holds; callers reuse one buffer across calls.
    pub fn hash_into(&self, value: &[u8], out: &mut Vec<u8>) {
        out.clear();
        if let Some(st) = &self.midstate {
            let mut st = st.clone();
            st.update(value);
            st.update(self.key.as_bytes());
            st.finalize_append(out);
        } else {
            let k = self.key.as_bytes();
            let mut buf = Vec::with_capacity(2 * k.len() + value.len());
            buf.extend_from_slice(k);
            buf.extend_from_slice(value);
            buf.extend_from_slice(k);
            out.extend_from_slice(&self.hasher.hash(&buf));
        }
    }

    /// Digest folded to a `u64` (see [`StreamHasher::hash_u64`]).
    pub fn hash_u64(&self, value: &[u8]) -> u64 {
        self.hash_u64_parts(&[value])
    }

    /// Keyed hash of the concatenation of `parts`, folded to a `u64`,
    /// streamed without assembling the message buffer: bit-identical to
    /// `hash_u64` of the concatenated bytes, allocation-free on the
    /// midstate path.
    pub fn hash_u64_parts(&self, parts: &[&[u8]]) -> u64 {
        if let Some(st) = &self.midstate {
            let mut st = st.clone();
            for part in parts {
                st.update(part);
            }
            st.update(self.key.as_bytes());
            st.finalize_fold_u64()
        } else {
            let k = self.key.as_bytes();
            let total: usize = parts.iter().map(|p| p.len()).sum();
            let mut buf = Vec::with_capacity(2 * k.len() + total);
            buf.extend_from_slice(k);
            for part in parts {
                buf.extend_from_slice(part);
            }
            buf.extend_from_slice(k);
            fold_u64(&self.hasher.hash(&buf))
        }
    }

    /// `H(V,k) mod m`, the reduction the selection criterion uses.
    /// Panics if `m == 0`.
    pub fn hash_mod(&self, value: &[u8], m: u64) -> u64 {
        assert!(m > 0, "modulus must be positive");
        self.hash_u64(value) % m
    }

    /// The least significant `bits` of the digest, as a u64
    /// (`lsb(H(...), τ)` in the multi-hash convention, §4.3).
    /// `bits` must be in `[1, 64]`.
    pub fn hash_lsb(&self, value: &[u8], bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in [1,64]");
        mask_lsb(self.hash_u64(value), bits)
    }

    /// Keyed hash of the canonical message `tag || (len ; field)*` (see
    /// [`encode::message`]) folded to a `u64`, streamed through the
    /// midstate without materializing the message buffer. Bit-identical
    /// to `hash_u64(&encode::message(tag, fields))`.
    pub fn hash_fields_u64(&self, tag: u8, fields: &[&[u8]]) -> u64 {
        if let Some(st) = &self.midstate {
            let mut st = st.clone();
            st.update(&[tag]);
            for f in fields {
                st.update(&(f.len() as u32).to_le_bytes());
                st.update(f);
            }
            st.update(self.key.as_bytes());
            st.finalize_fold_u64()
        } else {
            self.hash_u64(&encode::message(tag, fields))
        }
    }

    /// [`hash_fields_u64`](Self::hash_fields_u64) reduced `mod m`.
    /// Panics if `m == 0`.
    pub fn hash_fields_mod(&self, tag: u8, fields: &[&[u8]], m: u64) -> u64 {
        assert!(m > 0, "modulus must be positive");
        self.hash_fields_u64(tag, fields) % m
    }

    /// The least significant `bits` of [`hash_fields_u64`](Self::hash_fields_u64).
    /// `bits` must be in `[1, 64]`.
    pub fn hash_fields_lsb(&self, tag: u8, fields: &[&[u8]], bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in [1,64]");
        mask_lsb(self.hash_fields_u64(tag, fields), bits)
    }

    /// Compiles the keyed hash for repeated evaluation of
    /// `message(tag, [u64_bytes(x), trailing…])` where only `x` varies —
    /// see [`CompiledU64Hash`]. Results are bit-identical to
    /// [`hash_fields_u64`](Self::hash_fields_u64) with the same fields.
    pub fn compile_u64_message(&self, tag: u8, trailing: &[&[u8]]) -> CompiledU64Hash {
        let k = self.key.as_bytes();
        let msg_len = 1 + 4 + 8 + trailing.iter().map(|t| 4 + t.len()).sum::<usize>();
        let total = 2 * k.len() + msg_len;
        // One-block path: the padded input must leave room for 0x80 and
        // the 8 length bytes inside a single 64-byte block.
        if total <= 55 {
            if let Some(st) = &self.midstate {
                let mut block = [0u8; 64];
                let mut off = 0usize;
                let mut put = |bytes: &[u8], off: &mut usize| {
                    block[*off..*off + bytes.len()].copy_from_slice(bytes);
                    *off += bytes.len();
                };
                put(k, &mut off);
                put(&[tag], &mut off);
                put(&8u32.to_le_bytes(), &mut off);
                let slot = off;
                off += 8; // the u64 field, patched per call
                for t in trailing {
                    put(&(t.len() as u32).to_le_bytes(), &mut off);
                    put(t, &mut off);
                }
                put(k, &mut off);
                debug_assert_eq!(off, total);
                block[total] = 0x80;
                let bit_len = (total as u64) * 8;
                let inner = match st {
                    Midstate::Md5(_) => {
                        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
                        let mut masked = block;
                        masked[slot..slot + 8].fill(0);
                        let mut masked_words = [0u32; 16];
                        for (w, word) in masked_words.iter_mut().enumerate() {
                            *word = u32::from_le_bytes([
                                masked[4 * w],
                                masked[4 * w + 1],
                                masked[4 * w + 2],
                                masked[4 * w + 3],
                            ]);
                        }
                        CompiledInner::Md5Block {
                            block,
                            slot,
                            masked_words,
                        }
                    }
                    Midstate::Sha1(_) => {
                        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
                        CompiledInner::Sha1Block { block, slot }
                    }
                    Midstate::Sha256(_) => {
                        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
                        CompiledInner::Sha256Block { block, slot }
                    }
                };
                return CompiledU64Hash { inner };
            }
        }
        if let Some(st) = &self.midstate {
            let mut midstate = st.clone();
            midstate.update(&[tag]);
            midstate.update(&8u32.to_le_bytes());
            let mut suffix = Vec::new();
            for t in trailing {
                suffix.extend_from_slice(&(t.len() as u32).to_le_bytes());
                suffix.extend_from_slice(t);
            }
            suffix.extend_from_slice(k);
            return CompiledU64Hash {
                inner: CompiledInner::Stream { midstate, suffix },
            };
        }
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(k);
        buf.push(tag);
        buf.extend_from_slice(&8u32.to_le_bytes());
        let slot = buf.len();
        buf.extend_from_slice(&[0u8; 8]);
        for t in trailing {
            buf.extend_from_slice(&(t.len() as u32).to_le_bytes());
            buf.extend_from_slice(t);
        }
        buf.extend_from_slice(k);
        CompiledU64Hash {
            inner: CompiledInner::Buffered {
                hasher: Arc::clone(&self.hasher),
                buf,
                slot,
            },
        }
    }
}

fn mask_lsb(h: u64, bits: u32) -> u64 {
    if bits == 64 {
        h
    } else {
        h & ((1u64 << bits) - 1)
    }
}

/// A keyed hash *compiled* for the tightest loop of the scheme: repeated
/// evaluation of canonical messages `message(tag, [u64_bytes(x), t…])`
/// whose fields are all fixed except the leading u64.
///
/// When the whole keyed input `k ; message ; k` fits one 64-byte block
/// (it does for every convention-code hash with a typical short key),
/// compilation precomputes the fully padded block once; each call then
/// patches the 8 variable bytes and runs a **single compression from the
/// IV** — no state cloning, no buffering, no allocation. Longer keys fall
/// back to the cloned-midstate stream, and externally supplied hashers to
/// a patched message buffer. All three produce digests bit-identical to
/// [`KeyedHash::hash_fields_u64`].
#[derive(Debug, Clone)]
pub struct CompiledU64Hash {
    inner: CompiledInner,
}

#[derive(Clone)]
enum CompiledInner {
    /// Single padded block; `slot` is the offset of the u64 field and
    /// `masked_words` the block's LE message words with the slot bytes
    /// zeroed (the x4 path ORs the patched field in word-wise).
    Md5Block {
        block: [u8; 64],
        slot: usize,
        masked_words: [u32; 16],
    },
    Sha1Block {
        block: [u8; 64],
        slot: usize,
    },
    Sha256Block {
        block: [u8; 64],
        slot: usize,
    },
    /// Midstate primed past `k ; tag ; len(x)`; `suffix` holds the
    /// encoded trailing fields plus the key suffix.
    Stream {
        midstate: Midstate,
        suffix: Vec<u8>,
    },
    /// External hasher: whole keyed input buffered, u64 patched in place.
    Buffered {
        hasher: Arc<dyn StreamHasher>,
        buf: Vec<u8>,
        slot: usize,
    },
}

impl std::fmt::Debug for CompiledInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let variant = match self {
            CompiledInner::Md5Block { .. } => "Md5Block",
            CompiledInner::Sha1Block { .. } => "Sha1Block",
            CompiledInner::Sha256Block { .. } => "Sha256Block",
            CompiledInner::Stream { .. } => "Stream",
            CompiledInner::Buffered { .. } => "Buffered",
        };
        write!(f, "CompiledInner::{variant}(<contents redacted>)")
    }
}

impl CompiledU64Hash {
    /// Whether the single-block fast path was selected.
    pub fn is_one_block(&self) -> bool {
        matches!(
            self.inner,
            CompiledInner::Md5Block { .. }
                | CompiledInner::Sha1Block { .. }
                | CompiledInner::Sha256Block { .. }
        )
    }

    /// `H(message(tag, [u64_bytes(x), t…]), k)` folded to a u64.
    #[inline]
    pub fn hash_u64(&mut self, x: u64) -> u64 {
        match &mut self.inner {
            CompiledInner::Md5Block { block, slot, .. } => {
                block[*slot..*slot + 8].copy_from_slice(&x.to_le_bytes());
                fold_u64(&Md5::digest_padded_block(block))
            }
            CompiledInner::Sha1Block { block, slot } => {
                block[*slot..*slot + 8].copy_from_slice(&x.to_le_bytes());
                fold_u64(&Sha1::digest_padded_block(block))
            }
            CompiledInner::Sha256Block { block, slot } => {
                block[*slot..*slot + 8].copy_from_slice(&x.to_le_bytes());
                fold_u64(&Sha256::digest_padded_block(block))
            }
            CompiledInner::Stream { midstate, suffix } => {
                let mut st = midstate.clone();
                st.update(&x.to_le_bytes());
                st.update(suffix);
                st.finalize_fold_u64()
            }
            CompiledInner::Buffered { hasher, buf, slot } => {
                buf[*slot..*slot + 8].copy_from_slice(&x.to_le_bytes());
                fold_u64(&hasher.hash(buf))
            }
        }
    }

    /// The least significant `bits` of [`hash_u64`](Self::hash_u64).
    #[inline]
    pub fn hash_lsb(&mut self, x: u64, bits: u32) -> u64 {
        debug_assert!((1..=64).contains(&bits));
        mask_lsb(self.hash_u64(x), bits)
    }

    /// Hashes `L` field values at once; lane `l` equals `hash_u64(xs[l])`.
    /// On the MD5 one-block path the independent compressions run
    /// interleaved (MD5's step chain is serial, so one hash is
    /// latency-bound — multiple lanes expose the parallelism the hardware
    /// already has; 8 lanes roughly double 4-lane throughput). Other
    /// backends evaluate sequentially.
    pub fn hash_u64_lanes<const L: usize>(&mut self, xs: [u64; L]) -> [u64; L] {
        if let CompiledInner::Md5Block {
            slot, masked_words, ..
        } = &self.inner
        {
            // Lane-major message words: splat the fixed words, then OR
            // the patched u64 into the (at most three) words it spans.
            let mut m = [[0u32; L]; 16];
            for (w, mw) in m.iter_mut().enumerate() {
                *mw = [masked_words[w]; L];
            }
            let w0 = slot / 4;
            let sh = ((slot % 4) * 8) as u32;
            for (l, &x) in xs.iter().enumerate() {
                let wide = (x as u128) << sh;
                m[w0][l] = masked_words[w0] | (wide as u32);
                m[w0 + 1][l] = masked_words[w0 + 1] | ((wide >> 32) as u32);
                m[w0 + 2][l] = masked_words[w0 + 2] | ((wide >> 64) as u32);
            }
            Md5::fold_words(&m)
        } else {
            xs.map(|x| self.hash_u64(x))
        }
    }

    /// Four-lane convenience wrapper over
    /// [`hash_u64_lanes`](Self::hash_u64_lanes).
    pub fn hash_u64_x4(&mut self, xs: [u64; 4]) -> [u64; 4] {
        self.hash_u64_lanes(xs)
    }
}

/// Serialization helpers shared by embedder and detector.
///
/// The paper hashes structured inputs such as `msb(ε, β)` or
/// `lsb(m_ij, γ) ; label(ε)`. These helpers define the *one* canonical byte
/// encoding both sides use, with domain-separation tags so e.g. a selection
/// hash can never collide with a bit-position hash.
pub mod encode {
    /// Domain tag for the extreme-selection criterion (§3.2).
    pub const DOM_SELECT: u8 = 0x01;
    /// Domain tag for the bit-position derivation (§3.2 / §4.1).
    pub const DOM_BITPOS: u8 = 0x02;
    /// Domain tag for the multi-hash encoding convention (§4.3).
    pub const DOM_MULTIHASH: u8 = 0x03;
    /// Domain tag for the quadratic-residue encoding prime derivation.
    pub const DOM_QUADRES: u8 = 0x04;

    /// Canonical message: `tag || fields`, each field length-prefixed
    /// little-endian so field boundaries are unambiguous.
    pub fn message(tag: u8, fields: &[&[u8]]) -> Vec<u8> {
        let total: usize = fields.iter().map(|f| f.len() + 4).sum();
        let mut out = Vec::with_capacity(1 + total);
        out.push(tag);
        for f in fields {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            out.extend_from_slice(f);
        }
        out
    }

    /// Canonical encoding of a u64 field.
    pub fn u64_bytes(x: u64) -> [u8; 8] {
        x.to_le_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::to_hex;
    use crate::md5::Md5;

    #[test]
    fn keyed_md5_matches_manual_concatenation() {
        let kh = KeyedHash::md5(Key::from_bytes(b"secret".to_vec()));
        let got = kh.hash(b"value");
        let manual = Md5::digest(b"secretvaluesecret");
        assert_eq!(got, manual.to_vec());
    }

    #[test]
    fn different_keys_give_different_hashes() {
        let a = KeyedHash::md5(Key::from_u64(1));
        let b = KeyedHash::md5(Key::from_u64(2));
        assert_ne!(a.hash_u64(b"x"), b.hash_u64(b"x"));
    }

    #[test]
    fn different_algorithms_give_different_hashes() {
        let k = Key::from_u64(7);
        let md5 = KeyedHash::md5(k.clone());
        let sha = KeyedHash::sha256(k);
        assert_ne!(md5.hash_u64(b"x"), sha.hash_u64(b"x"));
        assert_eq!(md5.algorithm(), "md5");
        assert_eq!(sha.algorithm(), "sha256");
    }

    #[test]
    fn hash_mod_in_range_and_covers() {
        let kh = KeyedHash::md5(Key::from_u64(42));
        let m = 13u64;
        let mut seen = vec![false; m as usize];
        for i in 0..2000u64 {
            let r = kh.hash_mod(&i.to_le_bytes(), m);
            assert!(r < m);
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn hash_mod_roughly_uniform() {
        let kh = KeyedHash::sha256(Key::from_u64(5));
        let m = 8u64;
        let trials = 20_000u64;
        let mut counts = vec![0u32; m as usize];
        for i in 0..trials {
            counts[kh.hash_mod(&i.to_le_bytes(), m) as usize] += 1;
        }
        let expect = trials as f64 / m as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.1, "{c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn hash_mod_zero_panics() {
        KeyedHash::md5(Key::from_u64(0)).hash_mod(b"x", 0);
    }

    #[test]
    fn hash_lsb_masks_correctly() {
        let kh = KeyedHash::md5(Key::from_u64(3));
        let full = kh.hash_u64(b"v");
        assert_eq!(kh.hash_lsb(b"v", 64), full);
        assert_eq!(kh.hash_lsb(b"v", 1), full & 1);
        assert_eq!(kh.hash_lsb(b"v", 16), full & 0xffff);
    }

    #[test]
    fn key_debug_is_redacted() {
        let k = Key::from_bytes(b"super-secret".to_vec());
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("super-secret"));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn canonical_message_is_injective_on_fields() {
        // ("ab", "c") must differ from ("a", "bc") — length prefixes.
        let m1 = encode::message(encode::DOM_SELECT, &[b"ab", b"c"]);
        let m2 = encode::message(encode::DOM_SELECT, &[b"a", b"bc"]);
        assert_ne!(m1, m2);
        // Same fields, different domain tag must differ.
        let m3 = encode::message(encode::DOM_BITPOS, &[b"ab", b"c"]);
        assert_ne!(m1, m3);
    }

    #[test]
    fn midstate_matches_buffered_construction() {
        // The fast path must be bit-identical to the naive k;V;k buffer
        // for every algorithm, across key/value lengths straddling the
        // 64-byte block boundary.
        let makers: [fn(Key) -> KeyedHash; 3] =
            [KeyedHash::md5, KeyedHash::sha1, KeyedHash::sha256];
        for mk in makers {
            for key_len in [0usize, 1, 8, 55, 56, 63, 64, 65, 130] {
                let key = Key::from_bytes(vec![0xA7u8; key_len]);
                let fast = mk(key);
                assert!(fast.has_midstate());
                let slow = fast.without_midstate();
                assert!(!slow.has_midstate());
                for msg_len in [0usize, 1, 25, 63, 64, 100] {
                    let v: Vec<u8> = (0..msg_len).map(|i| (i * 31 % 251) as u8).collect();
                    let alg = fast.algorithm();
                    assert_eq!(
                        fast.hash(&v),
                        slow.hash(&v),
                        "{alg} k={key_len} v={msg_len}"
                    );
                    assert_eq!(fast.hash_u64(&v), slow.hash_u64(&v));
                }
            }
        }
    }

    #[test]
    fn hash_fields_matches_message_buffer() {
        for kh in [
            KeyedHash::md5(Key::from_u64(99)),
            KeyedHash::sha256(Key::from_u64(99)),
            KeyedHash::md5(Key::from_u64(99)).without_midstate(),
        ] {
            for fields in [
                vec![b"".as_slice()],
                vec![b"ab".as_slice(), b"c".as_slice()],
                vec![b"a".as_slice(), b"bc".as_slice()],
                vec![&[0u8; 100][..], &[1u8; 7][..], b"x".as_slice()],
            ] {
                let msg = encode::message(encode::DOM_MULTIHASH, &fields);
                assert_eq!(
                    kh.hash_fields_u64(encode::DOM_MULTIHASH, &fields),
                    kh.hash_u64(&msg)
                );
                assert_eq!(
                    kh.hash_fields_mod(encode::DOM_MULTIHASH, &fields, 13),
                    kh.hash_mod(&msg, 13)
                );
                assert_eq!(
                    kh.hash_fields_lsb(encode::DOM_MULTIHASH, &fields, 5),
                    kh.hash_lsb(&msg, 5)
                );
            }
        }
    }

    #[test]
    fn compiled_u64_matches_fields_hashing() {
        // Every compiled backend (one-block, midstate stream, buffered)
        // must agree with hash_fields_u64 bit for bit.
        let label9 = [7u8; 9];
        let long_trailing = [3u8; 40];
        let makers: [fn(Key) -> KeyedHash; 3] =
            [KeyedHash::md5, KeyedHash::sha1, KeyedHash::sha256];
        for mk in makers {
            for key_len in [0usize, 8, 14, 15, 40] {
                let kh = mk(Key::from_bytes(vec![0x5Au8; key_len]));
                for trailing in [vec![&label9[..]], vec![&label9[..], &long_trailing[..]]] {
                    let mut compiled = kh.compile_u64_message(0x03, &trailing);
                    let buffered = {
                        let mut c = kh.without_midstate().compile_u64_message(0x03, &trailing);
                        assert!(!c.is_one_block());
                        let _ = c.hash_u64(1); // exercise before comparisons
                        c
                    };
                    let mut buffered = buffered;
                    for x in [0u64, 1, 0xffff, u64::MAX, 0x0123_4567_89ab_cdef] {
                        let xb = x.to_le_bytes();
                        let fields: Vec<&[u8]> = std::iter::once(&xb[..])
                            .chain(trailing.iter().copied())
                            .collect();
                        let want = kh.hash_fields_u64(0x03, &fields);
                        assert_eq!(
                            compiled.hash_u64(x),
                            want,
                            "{} key_len={key_len} trailing={} one_block={}",
                            kh.algorithm(),
                            trailing.len(),
                            compiled.is_one_block()
                        );
                        assert_eq!(buffered.hash_u64(x), want);
                        assert_eq!(compiled.hash_lsb(x, 3), want & 0b111);
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_x4_matches_scalar_lanes() {
        let label9 = [9u8; 9];
        let hashes = [
            KeyedHash::md5(Key::from_u64(8)),               // one-block x4 path
            KeyedHash::sha256(Key::from_u64(8)),            // one-block, sequential
            KeyedHash::md5(Key::from_bytes(vec![1u8; 30])), // stream fallback
            KeyedHash::md5(Key::from_u64(8)).without_midstate(), // buffered fallback
        ];
        for kh in hashes {
            let mut c = kh.compile_u64_message(0x03, &[&label9]);
            let xs = [0u64, 0xdead_beef, u64::MAX, 42];
            let batch = c.hash_u64_x4(xs);
            for l in 0..4 {
                assert_eq!(batch[l], c.hash_u64(xs[l]), "{} lane {l}", kh.algorithm());
            }
            let xs8 = [
                0u64,
                0xdead_beef,
                u64::MAX,
                42,
                1,
                2,
                0x8000_0000_0000_0000,
                7,
            ];
            let batch8 = c.hash_u64_lanes(xs8);
            for l in 0..8 {
                assert_eq!(
                    batch8[l],
                    c.hash_u64(xs8[l]),
                    "{} x8 lane {l}",
                    kh.algorithm()
                );
            }
        }
    }

    #[test]
    fn compiled_one_block_engages_for_short_keys() {
        let label9 = [1u8; 9];
        // key 8 → total 42 ≤ 55: one block. key 16 → total 58: stream.
        let fast = KeyedHash::md5(Key::from_u64(1)).compile_u64_message(0x03, &[&label9]);
        assert!(fast.is_one_block());
        let slow =
            KeyedHash::md5(Key::from_bytes(vec![0u8; 16])).compile_u64_message(0x03, &[&label9]);
        assert!(!slow.is_one_block());
    }

    #[test]
    fn hash_u64_parts_is_concatenation() {
        let kh = KeyedHash::sha1(Key::from_u64(4));
        assert_eq!(kh.hash_u64_parts(&[b"foo", b"bar"]), kh.hash_u64(b"foobar"));
        assert_eq!(kh.hash_u64_parts(&[]), kh.hash_u64(b""));
    }

    #[test]
    fn hash_into_reuses_buffer() {
        let kh = KeyedHash::sha256(Key::from_u64(17));
        let mut buf = Vec::new();
        kh.hash_into(b"one", &mut buf);
        assert_eq!(buf, kh.hash(b"one"));
        kh.hash_into(b"two", &mut buf);
        assert_eq!(buf, kh.hash(b"two"), "buffer must be cleared per call");
    }

    #[test]
    fn empty_key_is_plain_hash() {
        let kh = KeyedHash::md5(Key::from_bytes(Vec::new()));
        assert_eq!(to_hex(&kh.hash(b"abc")), to_hex(&Md5::digest(b"abc")));
        assert!(Key::from_bytes(Vec::new()).is_empty());
    }
}
