//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The `wmsd` wire protocol checksums every frame so a corrupted or torn
//! transport byte is *detected* rather than ingested: CRC-32 guarantees
//! detection of every single-bit error and every burst error up to 32
//! bits — which covers any single corrupted byte — at a cost of one
//! table lookup per byte. This is an integrity check against accidental
//! damage, not an authenticity check (the keyed hashes in
//! [`keyed`](crate::keyed) exist for that); a frame that must survive an
//! adversary needs a MAC, not a CRC.
//!
//! The implementation is the classic 256-entry table driver, with the
//! table built in a `const` evaluator so there is no runtime init and no
//! lazy-static machinery.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed CRC table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state. Feed bytes with [`update`](Crc32::update),
/// read the digest with [`finish`](Crc32::finish).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum (the state is unchanged; `finish` can be read
    /// mid-stream to checksum a prefix).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let whole = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut c = Crc32::new();
            for part in data.chunks(chunk) {
                c.update(part);
            }
            assert_eq!(c.finish(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn every_single_byte_corruption_detected() {
        let frame: Vec<u8> = (0..128u8).map(|i| i.wrapping_mul(37)).collect();
        let good = crc32(&frame);
        for pos in 0..frame.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = frame.clone();
                bad[pos] ^= flip;
                assert_ne!(
                    crc32(&bad),
                    good,
                    "corruption at {pos} ^ {flip:#x} undetected"
                );
            }
        }
    }
}
