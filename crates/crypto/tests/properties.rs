//! Property-based tests of the cryptographic substrate.

use proptest::prelude::*;
use wms_crypto::digest::{from_hex, to_hex};
use wms_crypto::{Digest, Key, KeyedHash, Md5, Sha1, Sha256};

/// Splits `data` at the given cut fractions and feeds the chunks
/// incrementally; must equal the one-shot digest.
fn incremental_md5(data: &[u8], cuts: &[usize]) -> Vec<u8> {
    let mut h = Md5::new();
    let mut start = 0;
    for &c in cuts {
        let end = c.min(data.len()).max(start);
        h.update(&data[start..end]);
        start = end;
    }
    h.update(&data[start..]);
    h.finalize()
}

proptest! {
    #[test]
    fn md5_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        mut cuts in prop::collection::vec(0usize..512, 0..6),
    ) {
        cuts.sort_unstable();
        let oneshot = Md5::digest(&data).to_vec();
        prop_assert_eq!(incremental_md5(&data, &cuts), oneshot);
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..512,
    ) {
        let mut h = Sha1::new();
        let c = cut.min(data.len());
        h.update(&data[..c]);
        h.update(&data[c..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data).to_vec());
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..512,
    ) {
        let mut h = Sha256::new();
        let c = cut.min(data.len());
        h.update(&data[..c]);
        h.update(&data[c..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data).to_vec());
    }

    #[test]
    fn digest_lengths(data in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(Md5::digest(&data).len(), 16);
        prop_assert_eq!(Sha1::digest(&data).len(), 20);
        prop_assert_eq!(Sha256::digest(&data).len(), 32);
    }

    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn different_inputs_different_digests(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        if a != b {
            prop_assert_ne!(Md5::digest(&a), Md5::digest(&b));
            prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
        }
    }

    #[test]
    fn keyed_hash_deterministic_and_key_separated(
        key1 in any::<u64>(),
        key2 in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = KeyedHash::md5(Key::from_u64(key1));
        let a2 = KeyedHash::md5(Key::from_u64(key1));
        prop_assert_eq!(a.hash_u64(&msg), a2.hash_u64(&msg));
        if key1 != key2 {
            let b = KeyedHash::md5(Key::from_u64(key2));
            // Not a strict inequality requirement (collisions possible in
            // a folded u64) but the full digests must differ.
            prop_assert_ne!(a.hash(&msg), b.hash(&msg));
        }
    }

    #[test]
    fn hash_mod_bounded(key in any::<u64>(), msg in any::<u64>(), m in 1u64..1_000_000) {
        let kh = KeyedHash::md5(Key::from_u64(key));
        prop_assert!(kh.hash_mod(&msg.to_le_bytes(), m) < m);
    }

    #[test]
    fn hash_lsb_masks(key in any::<u64>(), msg in any::<u64>(), bits in 1u32..=64) {
        let kh = KeyedHash::md5(Key::from_u64(key));
        let v = kh.hash_lsb(&msg.to_le_bytes(), bits);
        if bits < 64 {
            prop_assert!(v < (1u64 << bits));
        }
    }
}
