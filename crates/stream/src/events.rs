//! Multiplexed multi-stream events.
//!
//! The paper's model is one sensor stream; a production engine serves
//! many at once, interleaved on one wire. This module is the minimal
//! vocabulary for that: a [`StreamId`] naming each logical stream, an
//! [`Event`] pairing an id with a [`Sample`], and an [`EventSource`] —
//! the incremental, pull-based producer the engine ingests from in
//! batches (the multi-stream analogue of
//! [`StreamSource`]). Adapters are provided
//! to lift single-stream sources into event sources
//! ([`Tagged`], [`StreamSource::into_events`](crate::source::StreamSource))
//! and to merge several into one interleaved flow ([`Interleaver`]).

use crate::sample::Sample;
use crate::source::StreamSource;

/// Identity of one logical sensor stream inside a multi-stream flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One sample of one stream, as seen on an interleaved wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The stream this sample belongs to.
    pub stream: StreamId,
    /// The sample itself; `sample.index` is the position within *its own*
    /// stream, not within the interleaved flow.
    pub sample: Sample,
}

impl Event {
    /// Pairs a stream id with a sample.
    pub fn new(stream: StreamId, sample: Sample) -> Self {
        Event { stream, sample }
    }
}

/// An incremental producer of interleaved multi-stream events.
///
/// Like [`StreamSource`], deliberately minimal: `next_event` pulls one
/// event; the provided batch helpers are how an engine drains it without
/// materializing whole streams.
pub trait EventSource {
    /// Produces the next event, or `None` when every stream has ended.
    fn next_event(&mut self) -> Option<Event>;

    /// Drains up to `n` events into a Vec (fewer at end of flow).
    fn take_events(&mut self, n: usize) -> Vec<Event> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_event() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    /// Drains up to `n` events into `out` (cleared first), returning how
    /// many were produced. The allocation-free twin of
    /// [`take_events`](Self::take_events) for batch-loop callers.
    fn take_events_into(&mut self, n: usize, out: &mut Vec<Event>) -> usize {
        out.clear();
        for _ in 0..n {
            match self.next_event() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out.len()
    }

    /// Drains the entire flow. Only safe for finite sources.
    fn collect_events(&mut self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.next_event() {
            out.push(e);
        }
        out
    }
}

/// A single-stream [`StreamSource`] lifted into an [`EventSource`] by
/// tagging every sample with one fixed [`StreamId`].
pub struct Tagged<S> {
    id: StreamId,
    inner: S,
}

impl<S: StreamSource> Tagged<S> {
    /// Tags `inner`'s samples with `id`.
    pub fn new(id: StreamId, inner: S) -> Self {
        Tagged { id, inner }
    }
}

impl<S: StreamSource> EventSource for Tagged<S> {
    fn next_event(&mut self) -> Option<Event> {
        Some(Event::new(self.id, self.inner.next_sample()?))
    }
}

/// Round-robin merge of several single-stream sources into one
/// interleaved event flow: stream A's sample 0, stream B's sample 0, …,
/// stream A's sample 1, and so on, skipping exhausted streams. The
/// per-stream sample order is preserved — the only guarantee a
/// multi-stream engine needs.
#[derive(Default)]
pub struct Interleaver {
    sources: Vec<(StreamId, Box<dyn StreamSource>)>,
    exhausted: Vec<bool>,
    next: usize,
}

impl Interleaver {
    /// An empty interleaver (yields no events until sources are added).
    pub fn new() -> Self {
        Interleaver::default()
    }

    /// Adds one stream (builder style). Ids need not be unique, but an
    /// engine downstream will usually require them to be.
    pub fn with_stream(mut self, id: StreamId, src: impl StreamSource + 'static) -> Self {
        self.sources.push((id, Box::new(src)));
        self.exhausted.push(false);
        self
    }

    /// Number of registered streams (live or exhausted).
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// Splits an interleaved flow into per-stream sample vectors, in
/// first-touch order of the flow. Per-stream sample order is preserved;
/// samples are copied as-is (indices and provenance untouched), so a
/// well-formed flow demuxes into well-formed single streams.
pub fn demux(flow: &[Event]) -> Vec<(StreamId, Vec<Sample>)> {
    let mut order: Vec<StreamId> = Vec::new();
    let mut by_id: std::collections::HashMap<u64, Vec<Sample>> = std::collections::HashMap::new();
    for e in flow {
        by_id
            .entry(e.stream.0)
            .or_insert_with(|| {
                order.push(e.stream);
                Vec::new()
            })
            .push(e.sample);
    }
    order
        .into_iter()
        .map(|id| {
            let samples = by_id.remove(&id.0).expect("touched stream");
            (id, samples)
        })
        .collect()
}

/// Merges per-stream samples back into one flow, round-robin across the
/// given streams (the in-memory twin of [`Interleaver`], and the inverse
/// of [`demux`] up to interleaving order). Per-stream sample order is
/// preserved — the only guarantee multi-stream consumers rely on.
pub fn mux(streams: &[(StreamId, Vec<Sample>)]) -> Vec<Event> {
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursor = 0usize;
    while out.len() < total {
        for (id, samples) in streams {
            if let Some(&s) = samples.get(cursor) {
                out.push(Event::new(*id, s));
            }
        }
        cursor += 1;
    }
    out
}

impl EventSource for Interleaver {
    fn next_event(&mut self) -> Option<Event> {
        let n = self.sources.len();
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if self.exhausted[i] {
                continue;
            }
            let (id, src) = &mut self.sources[i];
            match src.next_sample() {
                Some(s) => return Some(Event::new(*id, s)),
                None => self.exhausted[i] = true,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    #[test]
    fn tagged_source_pairs_id_with_samples() {
        let mut src = Tagged::new(StreamId(7), VecSource::new(vec![0.1, 0.2]));
        let events = src.collect_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.stream == StreamId(7)));
        assert_eq!(events[1].sample.index, 1);
        assert_eq!(events[1].sample.value, 0.2);
        assert!(src.next_event().is_none());
    }

    #[test]
    fn into_events_adapter() {
        use crate::source::StreamSource;
        let mut src = VecSource::new(vec![1.0]).into_events(StreamId(3));
        assert_eq!(src.next_event().unwrap().stream, StreamId(3));
    }

    #[test]
    fn interleaver_round_robins_and_preserves_per_stream_order() {
        let mut il = Interleaver::new()
            .with_stream(StreamId(1), VecSource::new(vec![10.0, 11.0, 12.0]))
            .with_stream(StreamId(2), VecSource::new(vec![20.0]))
            .with_stream(StreamId(3), VecSource::new(vec![30.0, 31.0]));
        assert_eq!(il.len(), 3);
        let events = il.collect_events();
        assert_eq!(events.len(), 6);
        // Round robin with stream 2 dropping out after its only sample.
        let ids: Vec<u64> = events.iter().map(|e| e.stream.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 1, 3, 1]);
        // Per-stream sample order intact.
        let s1: Vec<f64> = events
            .iter()
            .filter(|e| e.stream == StreamId(1))
            .map(|e| e.sample.value)
            .collect();
        assert_eq!(s1, vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn take_events_batches() {
        let mut il = Interleaver::new()
            .with_stream(StreamId(1), VecSource::new(vec![1.0, 2.0]))
            .with_stream(StreamId(2), VecSource::new(vec![3.0]));
        assert_eq!(il.take_events(2).len(), 2);
        let mut buf = vec![Event::new(StreamId(9), Sample::new(0, 0.0))];
        assert_eq!(il.take_events_into(10, &mut buf), 1);
        assert_eq!(buf.len(), 1, "take_events_into clears the buffer");
        assert!(il.take_events(1).is_empty());
    }

    #[test]
    fn empty_interleaver_yields_nothing() {
        let mut il = Interleaver::new();
        assert!(il.is_empty());
        assert!(il.next_event().is_none());
    }

    #[test]
    fn demux_groups_by_first_touch_and_preserves_order() {
        let flow = vec![
            Event::new(StreamId(5), Sample::new(0, 1.0)),
            Event::new(StreamId(2), Sample::new(0, 9.0)),
            Event::new(StreamId(5), Sample::new(1, 2.0)),
            Event::new(StreamId(2), Sample::new(1, 8.0)),
            Event::new(StreamId(5), Sample::new(2, 3.0)),
        ];
        let streams = demux(&flow);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, StreamId(5), "first touch first");
        assert_eq!(streams[1].0, StreamId(2));
        let v5: Vec<f64> = streams[0].1.iter().map(|s| s.value).collect();
        assert_eq!(v5, vec![1.0, 2.0, 3.0]);
        assert_eq!(streams[1].1.len(), 2);
    }

    #[test]
    fn mux_round_robins_uneven_streams() {
        let streams = vec![
            (StreamId(1), crate::samples_from_values(&[10.0, 11.0, 12.0])),
            (StreamId(2), crate::samples_from_values(&[20.0])),
        ];
        let flow = mux(&streams);
        let ids: Vec<u64> = flow.iter().map(|e| e.stream.0).collect();
        assert_eq!(ids, vec![1, 2, 1, 1]);
        assert_eq!(demux(&flow), streams, "mux/demux round-trip");
    }

    #[test]
    fn demux_mux_empty_flow() {
        assert!(demux(&[]).is_empty());
        assert!(mux(&[]).is_empty());
    }
}
