//! Stream transforms and pipelines.
//!
//! A [`Transform`] is any whole-stream operation: the natural/adversarial
//! transforms of §2.1 (sampling, summarization, ε-attacks — implemented in
//! the `wms-attacks` crate) as well as benign plumbing. [`Pipeline`]
//! composes transforms left-to-right, which is how the combined
//! sampling+summarization experiment of Figure 10(b) is expressed.

use crate::sample::{renumber, Sample};

/// A whole-stream transformation.
///
/// Implementations must output a well-formed stream: consecutive `index`
/// values starting at 0, provenance spans referring to the *original*
/// stream of the input (i.e. spans are propagated, never reset).
pub trait Transform {
    /// Applies the transform.
    fn apply(&self, input: &[Sample]) -> Vec<Sample>;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// The identity transform (baseline / placeholder).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Transform for Identity {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        input.to_vec()
    }

    fn name(&self) -> String {
        "identity".into()
    }
}

/// The "read and copy" baseline of §6.4: every item is read and written
/// through with a fixed per-item cost and no inspection. Used as the
/// denominator when measuring watermarking overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadCopy;

impl Transform for ReadCopy {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        let mut out = Vec::with_capacity(input.len());
        for s in input {
            // Black-box the value so the copy is not optimized away in
            // benchmarks; semantically an exact copy.
            out.push(*s);
        }
        out
    }

    fn name(&self) -> String {
        "read-copy".into()
    }
}

/// Applies a value-wise function, preserving shape and provenance.
pub struct MapValues<F: Fn(f64) -> f64> {
    f: F,
    label: String,
}

impl<F: Fn(f64) -> f64> MapValues<F> {
    /// Wraps a pure value function.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        MapValues {
            f,
            label: label.into(),
        }
    }
}

impl<F: Fn(f64) -> f64> Transform for MapValues<F> {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        input
            .iter()
            .map(|s| s.with_value((self.f)(s.value)))
            .collect()
    }

    fn name(&self) -> String {
        format!("map({})", self.label)
    }
}

/// Left-to-right composition of transforms.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Transform>>,
}

impl Pipeline {
    /// Empty pipeline (acts as identity).
    pub fn new() -> Self {
        Pipeline { stages: Vec::new() }
    }

    /// Appends a stage; builder style.
    pub fn then(mut self, t: impl Transform + 'static) -> Self {
        self.stages.push(Box::new(t));
        self
    }

    /// Appends a boxed stage.
    pub fn then_boxed(mut self, t: Box<dyn Transform>) -> Self {
        self.stages.push(t);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Transform for Pipeline {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        // Feed the first stage the input slice directly instead of
        // copying the whole stream into a throwaway Vec first.
        let Some((first, rest)) = self.stages.split_first() else {
            return renumber(input.to_vec());
        };
        let mut cur = first.apply(input);
        for stage in rest {
            cur = stage.apply(&cur);
        }
        renumber(cur)
    }

    fn name(&self) -> String {
        if self.stages.is_empty() {
            return "pipeline()".into();
        }
        let names: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        format!("pipeline({})", names.join(" -> "))
    }
}

/// Checks the well-formedness contract transforms must uphold; used in
/// tests and debug assertions across the workspace.
pub fn is_well_formed(stream: &[Sample]) -> bool {
    stream
        .iter()
        .enumerate()
        .all(|(i, s)| s.index == i as u64 && s.value.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::samples_from_values;

    #[test]
    fn identity_and_readcopy_preserve_everything() {
        let input = samples_from_values(&[0.1, 0.2, 0.3]);
        assert_eq!(Identity.apply(&input), input);
        assert_eq!(ReadCopy.apply(&input), input);
    }

    #[test]
    fn map_values_applies_pointwise() {
        let input = samples_from_values(&[1.0, 2.0]);
        let out = MapValues::new("double", |x| 2.0 * x).apply(&input);
        assert_eq!(out[0].value, 2.0);
        assert_eq!(out[1].value, 4.0);
        assert_eq!(out[1].span, input[1].span);
    }

    #[test]
    fn pipeline_composes_in_order() {
        let input = samples_from_values(&[1.0]);
        let p = Pipeline::new()
            .then(MapValues::new("+1", |x| x + 1.0))
            .then(MapValues::new("*3", |x| x * 3.0));
        let out = p.apply(&input);
        assert_eq!(out[0].value, 6.0); // (1+1)*3, not 1*3+1
        assert_eq!(p.len(), 2);
        assert!(p.name().contains("->"));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let input = samples_from_values(&[0.5, -0.5]);
        let p = Pipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.apply(&input), input);
    }

    #[test]
    fn pipeline_renumbers_outputs() {
        // A stage that drops every other sample must still yield
        // consecutive indices after the pipeline.
        struct DropOdd;
        impl Transform for DropOdd {
            fn apply(&self, input: &[Sample]) -> Vec<Sample> {
                input.iter().filter(|s| s.index % 2 == 0).copied().collect()
            }
            fn name(&self) -> String {
                "drop-odd".into()
            }
        }
        let input = samples_from_values(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let out = Pipeline::new().then(DropOdd).apply(&input);
        assert!(is_well_formed(&out));
        assert_eq!(out.len(), 3);
        // Provenance still points at original indices 0, 2, 4.
        assert_eq!(out[2].span.start, 4);
    }

    #[test]
    fn well_formedness_detects_gaps_and_nan() {
        let good = samples_from_values(&[1.0, 2.0]);
        assert!(is_well_formed(&good));
        let mut bad = good.clone();
        bad[1].index = 5;
        assert!(!is_well_formed(&bad));
        let mut nan = good.clone();
        nan[0].value = f64::NAN;
        assert!(!is_well_formed(&nan));
    }
}
