//! # wms-stream
//!
//! Single-pass bounded-window streaming substrate for the `wms` workspace
//! (§2.2 of *Resilient Rights Protection for Sensor Streams*, VLDB 2004):
//!
//! * [`sample`] — values with provenance spans (measurement scaffolding
//!   for the evaluation; never consulted by detection);
//! * [`window`] — the fixed-capacity `$`-window with FIFO eviction;
//! * [`source`] — pull-based sources/sinks;
//! * [`events`] — multiplexed multi-stream events ([`StreamId`],
//!   [`Event`], interleaving adapters) for the engine crate;
//! * [`normalize`] — min–max normalization into (−0.5, +0.5), the paper's
//!   defense against linear-change attacks (A4);
//! * [`pipeline`] — the [`pipeline::Transform`] abstraction attacks and
//!   benign stages implement, plus composition;
//! * [`rate`] — data-rate (ς) estimation and the §4.2 rate-ratio route
//!   to the transform degree χ;
//! * [`csv`] — tiny hand-rolled persistence for streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod events;
pub mod normalize;
pub mod pipeline;
pub mod rate;
pub mod sample;
pub mod source;
pub mod window;

pub use events::{demux, mux, Event, EventSource, Interleaver, StreamId, Tagged};
pub use normalize::{normalize_stream, Normalizer};
pub use pipeline::{Identity, MapValues, Pipeline, ReadCopy, Transform};
pub use rate::{degree_from_counts, degree_from_rates, RateEstimator};
pub use sample::{renumber, samples_from_values, values_of, Sample, Span};
pub use source::{FnSource, SampleSource, StatsSink, StreamSink, StreamSource, VecSink, VecSource};
pub use window::SlidingWindow;
