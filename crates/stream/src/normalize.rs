//! Normalization to the paper's canonical value range (−0.5, +0.5).
//!
//! §2.2: "for the remainder of the paper we are going to assume the stream
//! values being normalized in the interval (−0.5, +0.5)" and §2.1 notes
//! that linear changes (attack A4) are "taken care of by the initial
//! normalization step": any affine transform `x ↦ a·x + b` that Mallory
//! applies is undone because min–max re-normalization of the transformed
//! stream reproduces the same canonical values.

use crate::sample::Sample;

/// Affine map `y = (x − offset) · scale` fitted so the observed data lands
/// strictly inside (−0.5, +0.5), plus the inverse map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    offset: f64,
    scale: f64,
}

/// Fraction of headroom kept at each end of the interval so normalized
/// values are strictly inside the open interval (−0.5, +0.5) and small
/// watermark alterations cannot push them out.
const MARGIN: f64 = 0.01;

impl Normalizer {
    /// Fits a min–max normalizer on observed values.
    ///
    /// Returns `None` for an empty slice or non-finite values. A constant
    /// stream maps to 0.0 (scale is degenerate; inverse restores the
    /// constant).
    pub fn fit(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let center = (lo + hi) / 2.0;
        let half_range = (hi - lo) / 2.0;
        if half_range == 0.0 {
            return Some(Normalizer {
                offset: center,
                scale: 0.0,
            });
        }
        // Map [lo, hi] onto [−0.5+m, +0.5−m].
        let scale = (0.5 - MARGIN) / half_range;
        Some(Normalizer {
            offset: center,
            scale,
        })
    }

    /// Builds an explicit normalizer (testing / pre-agreed calibration).
    pub fn explicit(offset: f64, scale: f64) -> Self {
        Normalizer { offset, scale }
    }

    /// Maps a raw value into (−0.5, +0.5).
    pub fn normalize(&self, x: f64) -> f64 {
        (x - self.offset) * self.scale
    }

    /// Maps a normalized value back into the raw domain. For a degenerate
    /// (constant-stream) normalizer, returns the constant.
    pub fn denormalize(&self, y: f64) -> f64 {
        if self.scale == 0.0 {
            self.offset
        } else {
            y / self.scale + self.offset
        }
    }

    /// Normalizes a whole sample vector, preserving indices/provenance.
    pub fn normalize_samples(&self, samples: &[Sample]) -> Vec<Sample> {
        samples
            .iter()
            .map(|s| s.with_value(self.normalize(s.value)))
            .collect()
    }

    /// Denormalizes a whole sample vector.
    pub fn denormalize_samples(&self, samples: &[Sample]) -> Vec<Sample> {
        samples
            .iter()
            .map(|s| s.with_value(self.denormalize(s.value)))
            .collect()
    }

    /// The fitted offset (stream midrange).
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The fitted scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// Fits on the values of `samples` and returns the normalized copy with
/// the fitted normalizer (the common "prepare stream for embedding" step).
pub fn normalize_stream(samples: &[Sample]) -> Option<(Vec<Sample>, Normalizer)> {
    let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    let n = Normalizer::fit(&values)?;
    Some((n.normalize_samples(samples), n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::samples_from_values;

    #[test]
    fn fit_maps_into_open_interval() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.35 - 17.0).collect();
        let n = Normalizer::fit(&vals).unwrap();
        for &v in &vals {
            let y = n.normalize(v);
            assert!(y > -0.5 && y < 0.5, "{y} escaped the interval");
        }
        // Extremes land on ±(0.5 − margin).
        let lo = n.normalize(-17.0);
        let hi = n.normalize(99.0 * 0.35 - 17.0);
        assert!((lo + 0.49).abs() < 1e-12);
        assert!((hi - 0.49).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_is_identity() {
        let vals = [3.0, -8.5, 12.25, 0.0, 7.125];
        let n = Normalizer::fit(&vals).unwrap();
        for &v in &vals {
            let back = n.denormalize(n.normalize(v));
            assert!((back - v).abs() < 1e-9, "{v} -> {back}");
        }
    }

    #[test]
    fn affine_attack_invariance() {
        // The paper's A4 defense: normalizing a·x + b equals normalizing x.
        let vals: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.7).sin() * 4.0 + 20.0)
            .collect();
        let attacked: Vec<f64> = vals.iter().map(|&v| 2.5 * v - 100.0).collect();
        let n0 = Normalizer::fit(&vals).unwrap();
        let n1 = Normalizer::fit(&attacked).unwrap();
        for (&v, &w) in vals.iter().zip(&attacked) {
            assert!((n0.normalize(v) - n1.normalize(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_scale_attack_flips_but_is_affine() {
        // A negative scale flips the stream; normalization maps it into
        // range (shape inverted — detection handles that via extremes of
        // both polarities).
        let vals: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let attacked: Vec<f64> = vals.iter().map(|&v| -3.0 * v + 5.0).collect();
        let n1 = Normalizer::fit(&attacked).unwrap();
        for &w in &attacked {
            let y = n1.normalize(w);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn constant_stream_degenerates_safely() {
        let vals = [7.0; 10];
        let n = Normalizer::fit(&vals).unwrap();
        assert_eq!(n.normalize(7.0), 0.0);
        assert_eq!(n.denormalize(0.123), 7.0);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Normalizer::fit(&[]).is_none());
        assert!(Normalizer::fit(&[1.0, f64::NAN]).is_none());
        assert!(Normalizer::fit(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn normalize_samples_keeps_provenance() {
        let ss = samples_from_values(&[10.0, 20.0, 30.0]);
        let (norm, n) = normalize_stream(&ss).unwrap();
        assert_eq!(norm.len(), 3);
        assert_eq!(norm[1].index, 1);
        assert_eq!(norm[1].span, ss[1].span);
        let back = n.denormalize_samples(&norm);
        for (a, b) in back.iter().zip(&ss) {
            assert!((a.value - b.value).abs() < 1e-9);
        }
    }
}
