//! Stream sample model with provenance.
//!
//! §2.2 of the paper is explicit that after sampling/summarization the
//! original time-stamp association is destroyed — the stream "is ultimately
//! just a sequence of values". Detection therefore never uses provenance.
//! We still *carry* provenance (the span of original indices each value
//! derives from) because the evaluation needs it: Figures 6 and 8 measure
//! "labels altered (%)", which requires matching extremes in an attacked
//! stream back to the originals. Provenance is measurement scaffolding,
//! not information available to the detector.

/// Half-open span `[start, end)` of original stream indices that a value
/// derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First original index covered.
    pub start: u64,
    /// One past the last original index covered.
    pub end: u64,
}

impl Span {
    /// Span covering the single index `i`.
    pub fn unit(i: u64) -> Self {
        Span {
            start: i,
            end: i + 1,
        }
    }

    /// Span covering `[start, end)`. Panics if empty or inverted.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "span must be non-empty: [{start},{end})");
        Span { start, end }
    }

    /// Number of original indices covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Spans are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the span covers original index `i`.
    pub fn contains(&self, i: u64) -> bool {
        (self.start..self.end).contains(&i)
    }

    /// Whether two spans share any original index.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Smallest span covering both inputs (they need not overlap).
    pub fn hull(&self, other: &Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Midpoint original index (used to match extremes across transforms).
    pub fn midpoint(&self) -> u64 {
        self.start + (self.end - self.start) / 2
    }
}

/// One stream value.
///
/// `index` is the position in the *current* stream (post-transform);
/// `span` is the provenance in the *original* stream. For an untransformed
/// stream, `span == Span::unit(index)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Position in the current stream.
    pub index: u64,
    /// The sensor reading (normalized or raw, depending on pipeline stage).
    pub value: f64,
    /// Provenance span in the original stream.
    pub span: Span,
}

impl Sample {
    /// A pristine sample at original position `index`.
    pub fn new(index: u64, value: f64) -> Self {
        Sample {
            index,
            value,
            span: Span::unit(index),
        }
    }

    /// A derived sample with explicit provenance.
    pub fn derived(index: u64, value: f64, span: Span) -> Self {
        Sample { index, value, span }
    }

    /// Copy with a different value, provenance preserved (an in-place
    /// alteration such as a watermark embedding or an ε-attack).
    pub fn with_value(&self, value: f64) -> Self {
        Sample { value, ..*self }
    }
}

/// Converts a plain value slice into pristine samples.
pub fn samples_from_values(values: &[f64]) -> Vec<Sample> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| Sample::new(i as u64, v))
        .collect()
}

/// Extracts the value series from samples.
pub fn values_of(samples: &[Sample]) -> Vec<f64> {
    samples.iter().map(|s| s.value).collect()
}

/// Renumbers `index` consecutively from 0, keeping values and provenance.
/// Transforms call this so their outputs are well-formed streams.
pub fn renumber(mut samples: Vec<Sample>) -> Vec<Sample> {
    for (i, s) in samples.iter_mut().enumerate() {
        s.index = i as u64;
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_span_properties() {
        let s = Span::unit(5);
        assert_eq!(s.len(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(!s.contains(6));
        assert_eq!(s.midpoint(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_span_rejected() {
        Span::new(3, 3);
    }

    #[test]
    fn overlap_cases() {
        let a = Span::new(0, 10);
        let b = Span::new(9, 12);
        let c = Span::new(10, 12);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn hull_covers_both() {
        let a = Span::new(2, 4);
        let b = Span::new(10, 11);
        let h = a.hull(&b);
        assert_eq!(h, Span::new(2, 11));
        assert!(h.overlaps(&a) && h.overlaps(&b));
    }

    #[test]
    fn sample_construction_and_alteration() {
        let s = Sample::new(7, 0.25);
        assert_eq!(s.span, Span::unit(7));
        let t = s.with_value(-0.1);
        assert_eq!(t.index, 7);
        assert_eq!(t.span, s.span);
        assert_eq!(t.value, -0.1);
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = [0.1, -0.2, 0.3];
        let ss = samples_from_values(&vals);
        assert_eq!(ss.len(), 3);
        assert_eq!(ss[2].index, 2);
        assert_eq!(values_of(&ss), vals.to_vec());
    }

    #[test]
    fn renumber_fixes_indices_preserves_provenance() {
        let ss = vec![
            Sample::derived(10, 1.0, Span::new(20, 25)),
            Sample::derived(99, 2.0, Span::new(25, 30)),
        ];
        let rn = renumber(ss);
        assert_eq!(rn[0].index, 0);
        assert_eq!(rn[1].index, 1);
        assert_eq!(rn[0].span, Span::new(20, 25));
        assert_eq!(rn[1].span, Span::new(25, 30));
    }
}
