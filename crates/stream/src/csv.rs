//! Minimal CSV persistence for streams and experiment outputs.
//!
//! Three formats:
//! * value-per-line (`value\n`) for raw sensor dumps;
//! * indexed (`index,value\n`) preserving current stream positions;
//! * interleaved events (`stream,value\n`) for multi-stream flows.
//!
//! Implemented by hand (no third-party CSV crate) because the needs are
//! tiny and the format is fully under our control.

use crate::events::{Event, StreamId};
use crate::sample::{samples_from_values, Sample};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes one value per line.
pub fn write_values(path: &Path, values: &[f64]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for v in values {
        writeln!(out, "{v}")?;
    }
    out.flush()
}

/// Reads a value-per-line file into pristine samples.
///
/// Blank lines and lines starting with `#` are skipped. A malformed line
/// yields `io::ErrorKind::InvalidData` with the offending line number.
pub fn read_values(path: &Path) -> io::Result<Vec<Sample>> {
    let reader = BufReader::new(File::open(path)?);
    let mut values = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: f64 = trimmed.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {trimmed:?}: {e}", lineno + 1),
            )
        })?;
        values.push(v);
    }
    Ok(samples_from_values(&values))
}

/// Writes `index,value` rows.
pub fn write_indexed(path: &Path, samples: &[Sample]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "# index,value")?;
    for s in samples {
        writeln!(out, "{},{}", s.index, s.value)?;
    }
    out.flush()
}

/// Reads `index,value` rows (provenance reset to the given indices).
pub fn read_indexed(path: &Path) -> io::Result<Vec<Sample>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(2, ',');
        let err = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let idx: u64 = parts
            .next()
            .ok_or_else(|| err(format!("line {}: missing index", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| err(format!("line {}: bad index: {e}", lineno + 1)))?;
        let val: f64 = parts
            .next()
            .ok_or_else(|| err(format!("line {}: missing value", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| err(format!("line {}: bad value: {e}", lineno + 1)))?;
        out.push(Sample::new(idx, val));
    }
    Ok(out)
}

/// Writes interleaved `stream,value` rows, preserving the wire order.
pub fn write_events(path: &Path, events: &[Event]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "# stream,value")?;
    for e in events {
        writeln!(out, "{},{}", e.stream, e.sample.value)?;
    }
    out.flush()
}

/// Reads interleaved `stream,value` rows into events.
///
/// Each event's `sample.index` is its position *within its own stream*
/// (arrival order per stream id), so every stream extracted from the
/// result is well-formed on its own. Blank lines and `#` comments are
/// skipped; malformed lines yield `io::ErrorKind::InvalidData` with the
/// offending line number.
pub fn read_events(path: &Path) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    let mut counters: HashMap<u64, u64> = HashMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut parts = trimmed.splitn(2, ',');
        let id: u64 = parts
            .next()
            .ok_or_else(|| err(format!("line {}: missing stream id", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| err(format!("line {}: bad stream id: {e}", lineno + 1)))?;
        let val: f64 = parts
            .next()
            .ok_or_else(|| err(format!("line {}: missing value", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| err(format!("line {}: bad value: {e}", lineno + 1)))?;
        let idx = counters.entry(id).or_insert(0);
        out.push(Event::new(StreamId(id), Sample::new(*idx, val)));
        *idx += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = env::temp_dir();
        p.push(format!("wms-stream-csv-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn values_roundtrip() {
        let path = tmp("values");
        let vals = vec![1.5, -2.25, 0.0, 1e-9];
        write_values(&path, &vals).unwrap();
        let back = read_values(&path).unwrap();
        assert_eq!(back.len(), vals.len());
        for (s, &v) in back.iter().zip(&vals) {
            assert_eq!(s.value, v);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn values_skips_comments_and_blanks() {
        let path = tmp("comments");
        std::fs::write(&path, "# header\n1.0\n\n2.0\n  # indented comment\n").unwrap();
        let back = read_values(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].value, 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn values_reports_bad_line() {
        let path = tmp("bad");
        std::fs::write(&path, "1.0\nnot-a-number\n").unwrap();
        let e = read_values(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("line 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_roundtrip() {
        let path = tmp("indexed");
        let samples = samples_from_values(&[0.25, 0.5, 0.75]);
        write_indexed(&path, &samples).unwrap();
        let back = read_indexed(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].index, 2);
        assert_eq!(back[2].value, 0.75);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_rejects_missing_value() {
        let path = tmp("noval");
        std::fs::write(&path, "0,1.0\n1\n").unwrap();
        let e = read_indexed(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_roundtrip_with_per_stream_indices() {
        let path = tmp("events");
        std::fs::write(
            &path,
            "# stream,value\n3,0.5\n7,0.25\n3,0.75\n7,-0.1\n3,0.9\n",
        )
        .unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0], Event::new(StreamId(3), Sample::new(0, 0.5)));
        assert_eq!(events[2], Event::new(StreamId(3), Sample::new(1, 0.75)));
        assert_eq!(events[3], Event::new(StreamId(7), Sample::new(1, -0.1)));
        // Write-out preserves wire order and round-trips.
        write_events(&path, &events).unwrap();
        let back = read_events(&path).unwrap();
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_reject_bad_rows() {
        let path = tmp("events-bad");
        std::fs::write(&path, "1,0.5\nnope,0.5\n").unwrap();
        let e = read_events(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("line 2"));
        std::fs::write(&path, "1\n").unwrap();
        assert!(read_events(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_notfound() {
        let e = read_values(Path::new("/definitely/not/here.csv")).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
    }

    /// Every malformed-row shape of the events format is rejected with
    /// `InvalidData`, the offending line number and a field-specific
    /// message — the error a user sees must say *what* is wrong *where*.
    #[test]
    fn events_malformed_rows_name_line_and_field() {
        let path = tmp("events-malformed");
        let cases: &[(&str, u32, &str)] = &[
            // (file contents, expected 1-based line, message fragment)
            ("1,0.5\nx7,0.5\n", 2, "bad stream id"),
            ("1,0.5\n-3,0.5\n", 2, "bad stream id"),
            ("1,0.5\n2,\n", 2, "bad value"),
            ("1,0.5\n2,zero\n", 2, "bad value"),
            ("7\n", 1, "missing value"),
            ("1,0.5\n\n# note\n3,nan?\n", 4, "bad value"),
            ("1,0.5\n2,1.0,extra\n", 2, "bad value"),
        ];
        for (contents, line, fragment) in cases {
            std::fs::write(&path, contents).unwrap();
            let e = read_events(&path).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{contents:?}");
            let msg = e.to_string();
            assert!(
                msg.contains(&format!("line {line}")),
                "{contents:?}: wrong line in {msg:?}"
            );
            assert!(
                msg.contains(fragment),
                "{contents:?}: expected {fragment:?} in {msg:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_malformed_rows_name_line_and_field() {
        let path = tmp("indexed-malformed");
        let cases: &[(&str, u32, &str)] = &[
            ("0,1.0\none,1.0\n", 2, "bad index"),
            ("0,1.0\n-1,1.0\n", 2, "bad index"),
            ("0,1.0\n1,one\n", 2, "bad value"),
            ("0,1.0\n1,\n", 2, "bad value"),
            ("5\n", 1, "missing value"),
        ];
        for (contents, line, fragment) in cases {
            std::fs::write(&path, contents).unwrap();
            let e = read_indexed(&path).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{contents:?}");
            let msg = e.to_string();
            assert!(
                msg.contains(&format!("line {line}")),
                "{contents:?}: wrong line in {msg:?}"
            );
            assert!(
                msg.contains(fragment),
                "{contents:?}: expected {fragment:?} in {msg:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_blank_and_comment_lines_do_not_shift_indices() {
        let path = tmp("events-gaps");
        std::fs::write(
            &path,
            "# header\n\n3,0.5\n   \n# mid-stream comment\n3,0.75\n  # indented\n7,0.1\n\n",
        )
        .unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 3);
        // Per-stream indices count only real rows, whatever the gaps.
        assert_eq!(events[0], Event::new(StreamId(3), Sample::new(0, 0.5)));
        assert_eq!(events[1], Event::new(StreamId(3), Sample::new(1, 0.75)));
        assert_eq!(events[2], Event::new(StreamId(7), Sample::new(0, 0.1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn indexed_blank_and_comment_lines_skipped() {
        let path = tmp("indexed-gaps");
        std::fs::write(&path, "# index,value\n\n4,0.25\n  # note\n9,0.5\n").unwrap();
        let back = read_indexed(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].index, back[0].value), (4, 0.25));
        assert_eq!((back[1].index, back[1].value), (9, 0.5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn events_whitespace_around_fields_tolerated() {
        let path = tmp("events-ws");
        std::fs::write(&path, "  3 , 0.5 \n\t7,\t-0.25\n").unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stream, StreamId(3));
        assert_eq!(events[0].sample.value, 0.5);
        assert_eq!(events[1].sample.value, -0.25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_event_file_parses_to_empty_flow() {
        let path = tmp("events-empty");
        std::fs::write(&path, "# stream,value\n\n").unwrap();
        assert!(read_events(&path).unwrap().is_empty());
        std::fs::write(&path, "").unwrap();
        assert!(read_events(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
