//! Data-rate modeling (ς in the paper's stream model, §2.2).
//!
//! The paper's primary route to the transform degree χ is the rate ratio:
//! "in a dynamic stream, with consistent stream data rates, χ can be
//! determined by simply dividing the original stream rate to the current
//! (transformed) stream rate" (§4.2). This module provides the rate
//! bookkeeping: a windowed estimator over timestamped arrivals and the
//! ratio computation with sanity checks.

/// Windowed arrival-rate estimator: items per second over the last `W`
/// arrivals, from caller-supplied timestamps (seconds). Deterministic and
/// clock-agnostic, so simulations can drive it with synthetic time.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    timestamps: std::collections::VecDeque<f64>,
    window: usize,
    total: u64,
}

impl RateEstimator {
    /// Estimator over the last `window ≥ 2` arrivals.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "need at least two arrivals for a rate");
        RateEstimator {
            timestamps: std::collections::VecDeque::with_capacity(window),
            window,
            total: 0,
        }
    }

    /// Records one arrival at time `t` (seconds; must be non-decreasing).
    pub fn record(&mut self, t: f64) {
        if let Some(&last) = self.timestamps.back() {
            assert!(t >= last, "timestamps must be non-decreasing");
        }
        if self.timestamps.len() == self.window {
            self.timestamps.pop_front();
        }
        self.timestamps.push_back(t);
        self.total += 1;
    }

    /// Current rate estimate ς (items/second) over the retained window;
    /// `None` until two arrivals with distinct timestamps were seen.
    pub fn rate(&self) -> Option<f64> {
        let n = self.timestamps.len();
        if n < 2 {
            return None;
        }
        let span = self.timestamps.back().unwrap() - self.timestamps.front().unwrap();
        if span <= 0.0 {
            return None;
        }
        Some((n - 1) as f64 / span)
    }

    /// Total arrivals ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// χ from the rate ratio ς/ς′ (§4.2). Returns `None` when either rate is
/// non-positive; clamps at 1 (a transformed stream cannot be denser than
/// the original under the paper's transform model).
pub fn degree_from_rates(original_rate: f64, observed_rate: f64) -> Option<f64> {
    // `> 0.0` is false for NaN, so NaN rates are rejected too.
    let positive = |r: f64| r > 0.0;
    if !positive(original_rate) || !positive(observed_rate) {
        return None;
    }
    Some((original_rate / observed_rate).max(1.0))
}

/// χ from item counts over the *same* covered interval (the offline
/// special case of the rate ratio: lengths are rates × a common duration).
pub fn degree_from_counts(original_items: usize, observed_items: usize) -> Option<f64> {
    if original_items == 0 || observed_items == 0 {
        return None;
    }
    Some((original_items as f64 / observed_items as f64).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_rate_measured_exactly() {
        let mut r = RateEstimator::new(16);
        for i in 0..32 {
            r.record(i as f64 * 0.01); // 100 Hz — the paper's example ς
        }
        let rate = r.rate().unwrap();
        assert!((rate - 100.0).abs() < 1e-9, "rate {rate}");
        assert_eq!(r.total(), 32);
    }

    #[test]
    fn warm_up_returns_none() {
        let mut r = RateEstimator::new(4);
        assert!(r.rate().is_none());
        r.record(0.0);
        assert!(r.rate().is_none());
        r.record(1.0);
        assert!(r.rate().is_some());
    }

    #[test]
    fn rate_tracks_recent_window_only() {
        let mut r = RateEstimator::new(4);
        // Slow phase: 1 Hz.
        for i in 0..8 {
            r.record(i as f64);
        }
        // Fast phase: 100 Hz.
        let start = 8.0;
        for i in 0..8 {
            r.record(start + i as f64 * 0.01);
        }
        let rate = r.rate().unwrap();
        assert!(rate > 50.0, "window should forget the slow phase: {rate}");
    }

    #[test]
    fn identical_timestamps_give_none() {
        let mut r = RateEstimator::new(4);
        r.record(5.0);
        r.record(5.0);
        assert!(r.rate().is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_travel_rejected() {
        let mut r = RateEstimator::new(4);
        r.record(2.0);
        r.record(1.0);
    }

    #[test]
    fn degree_from_rates_basics() {
        // The paper's scenario: 100 Hz source, 25 Hz after degree-4
        // sampling.
        assert_eq!(degree_from_rates(100.0, 25.0), Some(4.0));
        assert_eq!(degree_from_rates(100.0, 100.0), Some(1.0));
        // Denser than original clamps to 1.
        assert_eq!(degree_from_rates(100.0, 200.0), Some(1.0));
        assert_eq!(degree_from_rates(0.0, 10.0), None);
        assert_eq!(degree_from_rates(10.0, f64::NAN), None);
    }

    #[test]
    fn degree_from_counts_matches_rate_route() {
        assert_eq!(degree_from_counts(21630, 7210), Some(21630.0 / 7210.0));
        assert_eq!(degree_from_counts(100, 100), Some(1.0));
        assert_eq!(degree_from_counts(0, 5), None);
        assert_eq!(degree_from_counts(5, 0), None);
    }

    #[test]
    fn end_to_end_rate_ratio() {
        // Original at 100 Hz, observed (summarized by 5) at 20 Hz:
        // estimators on both sides recover χ = 5.
        let mut orig = RateEstimator::new(32);
        let mut obs = RateEstimator::new(32);
        for i in 0..64 {
            orig.record(i as f64 * 0.01);
        }
        for i in 0..16 {
            obs.record(i as f64 * 0.05);
        }
        let chi = degree_from_rates(orig.rate().unwrap(), obs.rate().unwrap()).unwrap();
        assert!((chi - 5.0).abs() < 1e-9, "chi {chi}");
    }
}
