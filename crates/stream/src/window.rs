//! The bounded processing window (`$` in the paper, §2.2).
//!
//! "At each given point in time, no more than $ of the stream values can
//! be stored locally. [...] as more incoming data becomes available, the
//! default behavior of the window model is to push older items out (to be
//! transmitted further) and shift the entire window to free up space."
//!
//! [`SlidingWindow`] enforces exactly that discipline: a fixed capacity,
//! FIFO eviction, mutable access to in-window items (embedding alters
//! them *before* they are pushed out), and an `advance` operation that
//! emits the oldest items downstream.

use crate::sample::Sample;
use std::collections::VecDeque;

/// Fixed-capacity FIFO window over stream samples.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: VecDeque<Sample>,
    capacity: usize,
    pushed: u64,
    evicted: u64,
}

impl SlidingWindow {
    /// Creates a window of capacity `$ > 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            evicted: 0,
        }
    }

    /// Window capacity `$`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window is at capacity (the steady streaming state).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Total samples ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total samples ever evicted/advanced out.
    pub fn total_evicted(&self) -> u64 {
        self.evicted
    }

    /// Pushes a new sample; if the window was full, returns the evicted
    /// oldest sample (which must be transmitted downstream — it can no
    /// longer be altered).
    pub fn push(&mut self, s: Sample) -> Option<Sample> {
        self.pushed += 1;
        let evicted = if self.buf.len() == self.capacity {
            self.evicted += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(s);
        evicted
    }

    /// Emits the oldest `n` samples (fewer if the window holds fewer).
    /// This is the paper's "advance the window past ε".
    pub fn advance(&mut self, n: usize) -> Vec<Sample> {
        let take = n.min(self.buf.len());
        self.evicted += take as u64;
        self.buf.drain(..take).collect()
    }

    /// Drains everything left (end of stream).
    pub fn drain_all(&mut self) -> Vec<Sample> {
        let n = self.buf.len();
        self.advance(n)
    }

    /// Read access by in-window offset (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&Sample> {
        self.buf.get(i)
    }

    /// Mutable access by in-window offset — how the embedder alters the
    /// characteristic subset while it is still resident.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut Sample> {
        self.buf.get_mut(i)
    }

    /// Iterates in-window samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.buf.iter()
    }

    /// In-window values as a contiguous Vec (oldest first). Allocates;
    /// intended for extreme scanning over the current window.
    pub fn values(&self) -> Vec<f64> {
        self.buf.iter().map(|s| s.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u64) -> Sample {
        Sample::new(i, i as f64 / 10.0)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SlidingWindow::new(0);
    }

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(s(0)).is_none());
        assert!(w.push(s(1)).is_none());
        assert!(w.push(s(2)).is_none());
        assert!(w.is_full());
        let ev = w.push(s(3)).expect("must evict oldest");
        assert_eq!(ev.index, 0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(0).unwrap().index, 1);
        assert_eq!(w.get(2).unwrap().index, 3);
    }

    #[test]
    fn advance_emits_oldest_in_order() {
        let mut w = SlidingWindow::new(5);
        for i in 0..5 {
            w.push(s(i));
        }
        let out = w.advance(3);
        assert_eq!(
            out.iter().map(|x| x.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_evicted(), 3);
    }

    #[test]
    fn advance_more_than_held_is_safe() {
        let mut w = SlidingWindow::new(4);
        w.push(s(0));
        w.push(s(1));
        let out = w.advance(10);
        assert_eq!(out.len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn mutation_in_window() {
        let mut w = SlidingWindow::new(2);
        w.push(s(0));
        w.push(s(1));
        w.get_mut(1).unwrap().value = 0.42;
        assert_eq!(w.get(1).unwrap().value, 0.42);
        // Provenance untouched by value mutation.
        assert_eq!(w.get(1).unwrap().span.start, 1);
    }

    #[test]
    fn counters_track_flow() {
        let mut w = SlidingWindow::new(2);
        for i in 0..5 {
            w.push(s(i));
        }
        assert_eq!(w.total_pushed(), 5);
        assert_eq!(w.total_evicted(), 3);
        let rest = w.drain_all();
        assert_eq!(rest.len(), 2);
        assert_eq!(w.total_evicted(), 5);
    }

    #[test]
    fn no_sample_lost_or_duplicated() {
        // Conservation law: pushed = evicted + resident, and the
        // concatenation of all outputs is the input order.
        let mut w = SlidingWindow::new(7);
        let mut out = Vec::new();
        for i in 0..100 {
            if let Some(e) = w.push(s(i)) {
                out.push(e);
            }
        }
        out.extend(w.drain_all());
        assert_eq!(out.len(), 100);
        for (i, sm) in out.iter().enumerate() {
            assert_eq!(sm.index, i as u64);
        }
    }

    #[test]
    fn values_snapshot() {
        let mut w = SlidingWindow::new(3);
        for i in 0..3 {
            w.push(s(i));
        }
        assert_eq!(w.values(), vec![0.0, 0.1, 0.2]);
    }
}
