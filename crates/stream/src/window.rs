//! The bounded processing window (`$` in the paper, §2.2).
//!
//! "At each given point in time, no more than $ of the stream values can
//! be stored locally. [...] as more incoming data becomes available, the
//! default behavior of the window model is to push older items out (to be
//! transmitted further) and shift the entire window to free up space."
//!
//! [`SlidingWindow`] enforces exactly that discipline: a fixed capacity,
//! FIFO eviction, mutable access to in-window items (embedding alters
//! them *before* they are pushed out), and an `advance` operation that
//! emits the oldest items downstream.

use crate::sample::Sample;
use std::collections::VecDeque;

/// Fixed-capacity FIFO window over stream samples.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: VecDeque<Sample>,
    capacity: usize,
    pushed: u64,
    evicted: u64,
}

impl SlidingWindow {
    /// Creates a window of capacity `$ > 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            evicted: 0,
        }
    }

    /// Rebuilds a window from checkpointed state: the resident samples
    /// (oldest first) plus the lifetime flow counters. Rejects state that
    /// violates the window invariants (`len <= capacity`,
    /// `pushed - evicted = len`), so a corrupt checkpoint cannot produce
    /// a window that later misbehaves.
    pub fn from_state(
        capacity: usize,
        samples: Vec<Sample>,
        pushed: u64,
        evicted: u64,
    ) -> Result<Self, String> {
        if capacity == 0 {
            return Err("window capacity must be positive".into());
        }
        if samples.len() > capacity {
            return Err(format!(
                "window state holds {} samples but capacity is {capacity}",
                samples.len()
            ));
        }
        if pushed.checked_sub(evicted) != Some(samples.len() as u64) {
            return Err(format!(
                "window flow counters inconsistent: pushed {pushed} - evicted {evicted} \
                 != resident {}",
                samples.len()
            ));
        }
        let mut buf = VecDeque::with_capacity(capacity);
        buf.extend(samples);
        Ok(SlidingWindow {
            buf,
            capacity,
            pushed,
            evicted,
        })
    }

    /// Window capacity `$`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window is at capacity (the steady streaming state).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Total samples ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total samples ever evicted/advanced out.
    pub fn total_evicted(&self) -> u64 {
        self.evicted
    }

    /// Pushes a new sample; if the window was full, returns the evicted
    /// oldest sample (which must be transmitted downstream — it can no
    /// longer be altered).
    pub fn push(&mut self, s: Sample) -> Option<Sample> {
        self.pushed += 1;
        let evicted = if self.buf.len() == self.capacity {
            self.evicted += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(s);
        evicted
    }

    /// Emits the oldest `n` samples (fewer if the window holds fewer).
    /// This is the paper's "advance the window past ε".
    pub fn advance(&mut self, n: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        self.advance_into(n, &mut out);
        out
    }

    /// Appends the oldest `n` samples (fewer if the window holds fewer)
    /// to `out` and returns how many were emitted. The allocation-free
    /// twin of [`advance`](Self::advance): callers reuse one output
    /// buffer across the whole stream.
    pub fn advance_into(&mut self, n: usize, out: &mut Vec<Sample>) -> usize {
        let take = n.min(self.buf.len());
        self.evicted += take as u64;
        out.extend(self.buf.drain(..take));
        take
    }

    /// Drops the oldest `n` samples without collecting them (a detector
    /// advances past processed data but emits nothing downstream).
    /// Returns how many were dropped.
    pub fn discard(&mut self, n: usize) -> usize {
        let take = n.min(self.buf.len());
        self.evicted += take as u64;
        self.buf.drain(..take);
        take
    }

    /// Drains everything left (end of stream).
    pub fn drain_all(&mut self) -> Vec<Sample> {
        let n = self.buf.len();
        self.advance(n)
    }

    /// Drains everything left into `out` (end of stream), returning the
    /// count; see [`advance_into`](Self::advance_into).
    pub fn drain_all_into(&mut self, out: &mut Vec<Sample>) -> usize {
        let n = self.buf.len();
        self.advance_into(n, out)
    }

    /// Read access by in-window offset (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&Sample> {
        self.buf.get(i)
    }

    /// Mutable access by in-window offset — how the embedder alters the
    /// characteristic subset while it is still resident.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut Sample> {
        self.buf.get_mut(i)
    }

    /// Iterates in-window samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.buf.iter()
    }

    /// In-window values as a contiguous Vec (oldest first). Allocates;
    /// intended for extreme scanning over the current window. Hot paths
    /// should prefer [`values_into`](Self::values_into).
    pub fn values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.values_into(&mut out);
        out
    }

    /// Replaces the contents of `out` with the in-window values (oldest
    /// first), reusing its capacity.
    pub fn values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.buf.len());
        let (a, b) = self.buf.as_slices();
        out.extend(a.iter().map(|s| s.value));
        out.extend(b.iter().map(|s| s.value));
    }

    /// The window contents as two contiguous slices, oldest first (the
    /// ring buffer's head and tail). Either slice may be empty.
    pub fn as_slices(&self) -> (&[Sample], &[Sample]) {
        self.buf.as_slices()
    }

    /// Rearranges the ring buffer so the whole window is one contiguous
    /// mutable slice, oldest first. O(len) moves at worst, O(1) when
    /// already contiguous.
    pub fn make_contiguous(&mut self) -> &mut [Sample] {
        self.buf.make_contiguous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u64) -> Sample {
        Sample::new(i, i as f64 / 10.0)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SlidingWindow::new(0);
    }

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(s(0)).is_none());
        assert!(w.push(s(1)).is_none());
        assert!(w.push(s(2)).is_none());
        assert!(w.is_full());
        let ev = w.push(s(3)).expect("must evict oldest");
        assert_eq!(ev.index, 0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(0).unwrap().index, 1);
        assert_eq!(w.get(2).unwrap().index, 3);
    }

    #[test]
    fn advance_emits_oldest_in_order() {
        let mut w = SlidingWindow::new(5);
        for i in 0..5 {
            w.push(s(i));
        }
        let out = w.advance(3);
        assert_eq!(
            out.iter().map(|x| x.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_evicted(), 3);
    }

    #[test]
    fn advance_more_than_held_is_safe() {
        let mut w = SlidingWindow::new(4);
        w.push(s(0));
        w.push(s(1));
        let out = w.advance(10);
        assert_eq!(out.len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn mutation_in_window() {
        let mut w = SlidingWindow::new(2);
        w.push(s(0));
        w.push(s(1));
        w.get_mut(1).unwrap().value = 0.42;
        assert_eq!(w.get(1).unwrap().value, 0.42);
        // Provenance untouched by value mutation.
        assert_eq!(w.get(1).unwrap().span.start, 1);
    }

    #[test]
    fn counters_track_flow() {
        let mut w = SlidingWindow::new(2);
        for i in 0..5 {
            w.push(s(i));
        }
        assert_eq!(w.total_pushed(), 5);
        assert_eq!(w.total_evicted(), 3);
        let rest = w.drain_all();
        assert_eq!(rest.len(), 2);
        assert_eq!(w.total_evicted(), 5);
    }

    #[test]
    fn no_sample_lost_or_duplicated() {
        // Conservation law: pushed = evicted + resident, and the
        // concatenation of all outputs is the input order.
        let mut w = SlidingWindow::new(7);
        let mut out = Vec::new();
        for i in 0..100 {
            if let Some(e) = w.push(s(i)) {
                out.push(e);
            }
        }
        out.extend(w.drain_all());
        assert_eq!(out.len(), 100);
        for (i, sm) in out.iter().enumerate() {
            assert_eq!(sm.index, i as u64);
        }
    }

    #[test]
    fn values_snapshot() {
        let mut w = SlidingWindow::new(3);
        for i in 0..3 {
            w.push(s(i));
        }
        assert_eq!(w.values(), vec![0.0, 0.1, 0.2]);
    }

    #[test]
    fn values_into_matches_values_after_wraparound() {
        // Force the ring buffer to wrap so as_slices returns two pieces.
        let mut w = SlidingWindow::new(4);
        for i in 0..11 {
            w.push(s(i));
        }
        let mut buf = vec![9.9; 32]; // stale contents must be replaced
        w.values_into(&mut buf);
        assert_eq!(buf, w.values());
        let (a, b) = w.as_slices();
        assert_eq!(a.len() + b.len(), w.len());
        let glued: Vec<u64> = a.iter().chain(b).map(|x| x.index).collect();
        assert_eq!(glued, vec![7, 8, 9, 10]);
    }

    #[test]
    fn advance_into_appends_and_counts() {
        let mut w = SlidingWindow::new(5);
        for i in 0..5 {
            w.push(s(i));
        }
        let mut out = vec![s(99)];
        assert_eq!(w.advance_into(2, &mut out), 2);
        assert_eq!(
            out.iter().map(|x| x.index).collect::<Vec<_>>(),
            vec![99, 0, 1],
            "advance_into appends after existing contents"
        );
        assert_eq!(w.total_evicted(), 2);
        assert_eq!(w.drain_all_into(&mut out), 3);
        assert_eq!(out.len(), 6);
        assert_eq!(w.total_evicted(), 5);
    }

    #[test]
    fn discard_drops_without_collecting() {
        let mut w = SlidingWindow::new(4);
        for i in 0..4 {
            w.push(s(i));
        }
        assert_eq!(w.discard(3), 3);
        assert_eq!(w.len(), 1);
        assert_eq!(w.get(0).unwrap().index, 3);
        assert_eq!(w.total_evicted(), 3);
        assert_eq!(w.discard(10), 1, "discard is clamped to the contents");
    }

    #[test]
    fn make_contiguous_preserves_order() {
        let mut w = SlidingWindow::new(4);
        for i in 0..9 {
            w.push(s(i));
        }
        let slice = w.make_contiguous();
        let idx: Vec<u64> = slice.iter().map(|x| x.index).collect();
        assert_eq!(idx, vec![5, 6, 7, 8]);
        slice[0].value = 0.77;
        assert_eq!(w.get(0).unwrap().value, 0.77);
    }
}
