//! Pull-based stream sources and sinks.
//!
//! A [`StreamSource`] produces samples one at a time — the single-pass
//! contract of the paper's model. Sinks absorb the (possibly watermarked)
//! outflow. Both are deliberately minimal traits so sensors, files and
//! in-memory fixtures interoperate.

use crate::events::{StreamId, Tagged};
use crate::sample::Sample;
use wms_math::RunningStats;

/// A single-pass producer of stream samples.
pub trait StreamSource {
    /// Produces the next sample, or `None` at end of stream.
    fn next_sample(&mut self) -> Option<Sample>;

    /// Drains up to `n` samples into a Vec (fewer at end of stream).
    fn take_samples(&mut self, n: usize) -> Vec<Sample> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_sample() {
                Some(s) => out.push(s),
                None => break,
            }
        }
        out
    }

    /// Drains the entire source. Only safe for finite sources.
    fn collect_all(&mut self) -> Vec<Sample> {
        let mut out = Vec::new();
        while let Some(s) = self.next_sample() {
            out.push(s);
        }
        out
    }

    /// Lifts this source into a multi-stream
    /// [`EventSource`](crate::events::EventSource) by tagging every
    /// sample with `id` — the adapter a multi-stream engine ingests
    /// single sensors through.
    fn into_events(self, id: StreamId) -> Tagged<Self>
    where
        Self: Sized,
    {
        Tagged::new(id, self)
    }
}

/// Source over an in-memory value vector (pristine provenance).
#[derive(Debug, Clone)]
pub struct VecSource {
    values: Vec<f64>,
    pos: usize,
}

impl VecSource {
    /// Wraps a value vector.
    pub fn new(values: Vec<f64>) -> Self {
        VecSource { values, pos: 0 }
    }

    /// Remaining samples.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.pos
    }
}

impl StreamSource for VecSource {
    fn next_sample(&mut self) -> Option<Sample> {
        let v = *self.values.get(self.pos)?;
        let s = Sample::new(self.pos as u64, v);
        self.pos += 1;
        Some(s)
    }
}

/// Source over pre-built samples (e.g. replaying an attacked stream).
#[derive(Debug, Clone)]
pub struct SampleSource {
    samples: Vec<Sample>,
    pos: usize,
}

impl SampleSource {
    /// Wraps pre-built samples.
    pub fn new(samples: Vec<Sample>) -> Self {
        SampleSource { samples, pos: 0 }
    }
}

impl StreamSource for SampleSource {
    fn next_sample(&mut self) -> Option<Sample> {
        let s = *self.samples.get(self.pos)?;
        self.pos += 1;
        Some(s)
    }
}

/// Infinite source driven by a closure `index -> value`.
pub struct FnSource<F: FnMut(u64) -> f64> {
    f: F,
    next_index: u64,
    limit: Option<u64>,
}

impl<F: FnMut(u64) -> f64> FnSource<F> {
    /// Unbounded generator.
    pub fn new(f: F) -> Self {
        FnSource {
            f,
            next_index: 0,
            limit: None,
        }
    }

    /// Generator producing exactly `n` samples.
    pub fn with_limit(f: F, n: u64) -> Self {
        FnSource {
            f,
            next_index: 0,
            limit: Some(n),
        }
    }
}

impl<F: FnMut(u64) -> f64> StreamSource for FnSource<F> {
    fn next_sample(&mut self) -> Option<Sample> {
        if let Some(lim) = self.limit {
            if self.next_index >= lim {
                return None;
            }
        }
        let i = self.next_index;
        self.next_index += 1;
        Some(Sample::new(i, (self.f)(i)))
    }
}

/// A consumer of stream samples.
pub trait StreamSink {
    /// Absorbs one sample.
    fn accept(&mut self, s: Sample);

    /// Absorbs a batch.
    fn accept_all(&mut self, ss: impl IntoIterator<Item = Sample>)
    where
        Self: Sized,
    {
        for s in ss {
            self.accept(s);
        }
    }
}

/// Sink collecting into memory.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Collected samples, arrival order.
    pub samples: Vec<Sample>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collected values only.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.value).collect()
    }
}

impl StreamSink for VecSink {
    fn accept(&mut self, s: Sample) {
        self.samples.push(s);
    }
}

/// Sink keeping only running statistics — the memory-frugal option the
/// paper's window model implies for long streams.
#[derive(Debug, Default, Clone)]
pub struct StatsSink {
    stats: RunningStats,
}

impl StatsSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

impl StreamSink for StatsSink {
    fn accept(&mut self, s: Sample) {
        self.stats.push(s.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_yields_in_order() {
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(src.remaining(), 3);
        let all = src.collect_all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].index, 1);
        assert_eq!(all[1].value, 2.0);
        assert!(src.next_sample().is_none());
    }

    #[test]
    fn take_samples_partial_and_exhausted() {
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(src.take_samples(2).len(), 2);
        assert_eq!(src.take_samples(5).len(), 1);
        assert!(src.take_samples(5).is_empty());
    }

    #[test]
    fn fn_source_limit() {
        let mut src = FnSource::with_limit(|i| i as f64 * 0.5, 4);
        let all = src.collect_all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].value, 1.5);
    }

    #[test]
    fn fn_source_unbounded_streams() {
        let mut src = FnSource::new(|i| (i % 7) as f64);
        let first = src.take_samples(100);
        assert_eq!(first.len(), 100);
        assert_eq!(first[99].index, 99);
    }

    #[test]
    fn sample_source_preserves_provenance() {
        use crate::sample::{Sample, Span};
        let samples = vec![Sample::derived(0, 1.0, Span::new(5, 10))];
        let mut src = SampleSource::new(samples.clone());
        assert_eq!(src.next_sample().unwrap().span, Span::new(5, 10));
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::new();
        sink.accept_all(VecSource::new(vec![0.5, -0.5]).collect_all());
        assert_eq!(sink.values(), vec![0.5, -0.5]);
    }

    #[test]
    fn stats_sink_summarizes() {
        let mut sink = StatsSink::new();
        sink.accept_all(VecSource::new(vec![1.0, 2.0, 3.0]).collect_all());
        assert_eq!(sink.stats().count(), 3);
        assert!((sink.stats().mean() - 2.0).abs() < 1e-12);
    }
}
