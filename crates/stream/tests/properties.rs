//! Property-based tests of the streaming substrate.

use proptest::prelude::*;
use wms_stream::{samples_from_values, values_of, Normalizer, Sample, SlidingWindow, Span};

proptest! {
    #[test]
    fn window_conserves_samples(cap in 1usize..64, n in 0usize..500) {
        let mut w = SlidingWindow::new(cap);
        let mut out = Vec::new();
        for i in 0..n {
            if let Some(e) = w.push(Sample::new(i as u64, i as f64)) {
                out.push(e);
            }
            prop_assert!(w.len() <= cap);
        }
        out.extend(w.drain_all());
        prop_assert_eq!(out.len(), n);
        for (i, s) in out.iter().enumerate() {
            prop_assert_eq!(s.index, i as u64);
        }
    }

    #[test]
    fn window_advance_invariant(cap in 2usize..64, pushes in 1usize..200, adv in 1usize..32) {
        let mut w = SlidingWindow::new(cap);
        for i in 0..pushes {
            w.push(Sample::new(i as u64, 0.0));
        }
        let held = w.len();
        let got = w.advance(adv);
        prop_assert_eq!(got.len(), adv.min(held));
        prop_assert_eq!(w.len(), held - got.len());
    }

    #[test]
    fn span_hull_contains_both(a in 0u64..1000, la in 1u64..50, b in 0u64..1000, lb in 1u64..50) {
        let s1 = Span::new(a, a + la);
        let s2 = Span::new(b, b + lb);
        let h = s1.hull(&s2);
        prop_assert!(h.start <= s1.start && h.end >= s1.end);
        prop_assert!(h.start <= s2.start && h.end >= s2.end);
        prop_assert!(h.len() >= s1.len().max(s2.len()));
    }

    #[test]
    fn span_overlap_symmetric(a in 0u64..100, la in 1u64..20, b in 0u64..100, lb in 1u64..20) {
        let s1 = Span::new(a, a + la);
        let s2 = Span::new(b, b + lb);
        prop_assert_eq!(s1.overlaps(&s2), s2.overlaps(&s1));
        // Overlap iff some index is in both.
        let brute = (s1.start..s1.end).any(|i| s2.contains(i));
        prop_assert_eq!(s1.overlaps(&s2), brute);
    }

    #[test]
    fn normalizer_maps_into_interval(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let n = Normalizer::fit(&values).unwrap();
        for &v in &values {
            let y = n.normalize(v);
            prop_assert!((-0.5..=0.5).contains(&y), "{} -> {}", v, y);
        }
    }

    #[test]
    fn normalizer_roundtrip(values in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let n = Normalizer::fit(&values).unwrap();
        for &v in &values {
            let back = n.denormalize(n.normalize(v));
            prop_assert!((back - v).abs() <= 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn normalizer_affine_invariant(
        values in prop::collection::vec(-1e3f64..1e3, 2..100),
        scale in prop::sample::select(vec![0.001f64, 0.5, 2.0, 1000.0]),
        offset in -1e4f64..1e4,
    ) {
        // Degenerate (constant) inputs excluded by construction below.
        let spread: f64 = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let attacked: Vec<f64> = values.iter().map(|&v| scale * v + offset).collect();
        let n0 = Normalizer::fit(&values).unwrap();
        let n1 = Normalizer::fit(&attacked).unwrap();
        for (&v, &w) in values.iter().zip(&attacked) {
            prop_assert!((n0.normalize(v) - n1.normalize(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_roundtrip_values(values in prop::collection::vec(-1e3f64..1e3, 0..100)) {
        prop_assert_eq!(values_of(&samples_from_values(&values)), values);
    }
}
