//! Streaming and batch statistics.
//!
//! The watermarker's quality-assessment module (§4.4 of the paper) and the
//! experiment harness both need numerically stable running moments over
//! bounded windows, plus batch summaries for reporting the mean/std impact
//! of an embedding (§6.4).

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// Supports `push` only; for windowed statistics that need removal, see
/// [`SlidingMoments`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 when n < 1.
    pub fn variance(&self) -> f64 {
        if self.n < 1 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1); 0 when n < 2.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact mean/variance over a sliding window, maintained incrementally.
///
/// The paper's processing model only ever holds `$` items (§2.2); any
/// quality constraint over "the current data window" needs moments that
/// update as items enter and leave. This keeps Σx and Σx² and recomputes
/// from them; adequate for the value magnitudes used here (|x| < 0.5 or
/// tens of °C over windows of ≤ 10⁶ items).
#[derive(Debug, Clone, Default)]
pub struct SlidingMoments {
    n: u64,
    sum: f64,
    sum_sq: f64,
}

impl SlidingMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation entering the window.
    pub fn insert(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Removes an observation leaving the window. The caller must only
    /// remove values previously inserted.
    pub fn remove(&mut self, x: f64) {
        assert!(self.n > 0, "remove from empty SlidingMoments");
        self.n -= 1;
        self.sum -= x;
        self.sum_sq -= x * x;
    }

    /// Replaces one in-window value by another (an embedding alteration).
    pub fn replace(&mut self, old: f64, new: f64) {
        self.sum += new - old;
        self.sum_sq += new * new - old * old;
    }

    /// Number of in-window observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Raw accumulator state `(n, Σx, Σx²)` — the exact floating-point
    /// sums, for checkpointing. A moments value rebuilt with
    /// [`from_raw_state`](Self::from_raw_state) from these parts behaves
    /// bit-identically to the original under every further operation.
    pub fn raw_state(&self) -> (u64, f64, f64) {
        (self.n, self.sum, self.sum_sq)
    }

    /// Rebuilds an accumulator from [`raw_state`](Self::raw_state) parts.
    pub fn from_raw_state(n: u64, sum: f64, sum_sq: f64) -> Self {
        SlidingMoments { n, sum, sum_sq }
    }

    /// Window mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Window population variance, clamped at 0 against rounding.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0)
    }

    /// Window population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Batch summary of a slice: mean, population std-dev, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

/// Computes a [`Summary`] of `xs`. Returns `None` for an empty slice.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut acc = RunningStats::new();
    for &x in xs {
        acc.push(x);
    }
    Some(Summary {
        mean: acc.mean(),
        std_dev: acc.std_dev(),
        min: acc.min(),
        max: acc.max(),
        n: xs.len(),
    })
}

/// Relative change `|after − before| / |before|`, in percent.
///
/// Used to report the §6.4 data-quality impact ("the mean of the
/// watermarked stream varied less than 0.21 % from the original").
/// Returns the absolute difference ×100 when `before` is (near) zero, so
/// streams normalized to mean ≈ 0 still yield a meaningful figure.
pub fn relative_change_pct(before: f64, after: f64) -> f64 {
    let diff = (after - before).abs();
    if before.abs() < 1e-12 {
        diff * 100.0
    } else {
        diff / before.abs() * 100.0
    }
}

/// Equal-width histogram over `[lo, hi)` used by distribution diagnostics
/// (e.g. checking that Mallory's additive values match the host
/// distribution, attack A5 in §2.1).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds one observation; values outside `[lo, hi)` count as outliers.
    pub fn push(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut b = ((x - self.lo) / w) as usize;
        if b >= self.counts.len() {
            b = self.counts.len() - 1;
        }
        self.counts[b] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations outside the configured range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// L1 distance between two normalized histograms (same shape required).
    /// 0 = identical distributions, 2 = disjoint support.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        let ta = self.total().max(1) as f64;
        let tb = other.total().max(1) as f64;
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| (a as f64 / ta - b as f64 / tb).abs())
            .sum()
    }
}

/// Pearson correlation coefficient of two equal-length slices.
/// Returns `None` if lengths differ, are < 2, or either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert_close(s.mean(), 5.0, 1e-12);
        assert_close(s.variance(), 4.0, 1e-12);
        assert_close(s.std_dev(), 2.0, 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_single() {
        let mut s = RunningStats::new();
        s.push(3.25);
        assert_eq!(s.mean(), 3.25);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_close(left.mean(), whole.mean(), 1e-10);
        assert_close(left.variance(), whole.variance(), 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sliding_moments_window_semantics() {
        let mut m = SlidingMoments::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.insert(x);
        }
        m.remove(1.0); // window is now {2,3,4}
        assert_eq!(m.count(), 3);
        assert_close(m.mean(), 3.0, 1e-12);
        assert_close(m.variance(), 2.0 / 3.0, 1e-12);
    }

    #[test]
    fn sliding_moments_replace() {
        let mut m = SlidingMoments::new();
        for x in [1.0, 2.0, 3.0] {
            m.insert(x);
        }
        m.replace(3.0, 6.0); // window {1,2,6}
        assert_close(m.mean(), 3.0, 1e-12);
        assert_close(m.variance(), (4.0 + 1.0 + 9.0) / 3.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "remove from empty")]
    fn sliding_moments_underflow_panics() {
        SlidingMoments::new().remove(1.0);
    }

    #[test]
    fn summarize_matches_manual() {
        let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_close(s.mean, 2.0, 1e-12);
        assert_close(s.std_dev, (2.0f64 / 3.0).sqrt(), 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn relative_change_normal_and_near_zero() {
        assert_close(relative_change_pct(100.0, 100.21), 0.21, 1e-9);
        assert_close(relative_change_pct(-4.0, -4.2), 5.0, 1e-9);
        // Near-zero baseline: report absolute difference scaled to percent.
        assert_close(relative_change_pct(0.0, 0.003), 0.3, 1e-12);
    }

    #[test]
    fn histogram_buckets_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, f64::NAN] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_l1_identical_is_zero() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9] {
            a.push(x);
            b.push(x);
        }
        assert_close(a.l1_distance(&b), 0.0, 1e-12);
    }

    #[test]
    fn histogram_l1_disjoint_is_two() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.1);
        b.push(0.9);
        assert_close(a.l1_distance(&b), 2.0, 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&xs, &ys).unwrap(), 1.0, 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert_close(pearson(&xs, &zs).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }
}
