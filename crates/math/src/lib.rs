//! # wms-math
//!
//! Numeric substrate for the `wms` workspace — the Rust reproduction of
//! *Resilient Rights Protection for Sensor Streams* (Sion, Atallah,
//! Prabhakar; VLDB 2004).
//!
//! Everything here is implemented from scratch so that experiments are
//! deterministic and the analysis (§5 of the paper) is auditable:
//!
//! * [`rng`] — xoshiro256++ deterministic generator with uniform/normal
//!   draws, shuffles and sampling;
//! * [`stats`] — Welford running moments, sliding-window moments, batch
//!   summaries, histograms, correlation;
//! * [`special`] — log-gamma, log/exact binomials, binomial tails, erf;
//! * [`hypergeom`] — the paper's sampling-without-replacement attack model
//!   `P(x+t; x; y)`;
//! * [`numtheory`] — Miller–Rabin, prime generation, modular arithmetic
//!   and Jacobi/Legendre symbols for the quadratic-residue encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hypergeom;
pub mod numtheory;
pub mod rng;
pub mod special;
pub mod stats;

pub use rng::DetRng;
pub use stats::{summarize, RunningStats, SlidingMoments, Summary};
