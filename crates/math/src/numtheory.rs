//! Number theory for the quadratic-residue bit encoding.
//!
//! §4.3 of the paper sketches a faster alternative encoding adapted from
//! Atallah & Wagstaff \[1\]: alter the γ least-significant bits of a value
//! until selected prefixes of it, read as integers, are quadratic residues
//! modulo a secret large prime ("true") or non-residues ("false"). That
//! encoding needs primality testing, random prime generation, modular
//! exponentiation and Legendre/Jacobi symbols — all provided here for the
//! 64-bit integers the fixed-point codec produces.

/// (a * b) mod m without overflow, via u128 widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// a^e mod m by square-and-multiply. `m` must be nonzero.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut result = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            result = mul_mod(result, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    result
}

/// Greatest common divisor (binary-free Euclid; inputs fit u64).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Deterministic Miller–Rabin for u64.
///
/// The witness set {2,3,5,7,11,13,17,19,23,29,31,37} is proven sufficient
/// for all n < 3.3·10^24, which covers u64 entirely.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime `>= n` (wraps only if `n` exceeds the largest u64 prime,
/// which is unreachable in practice; panics in that case).
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime(n) {
            return n;
        }
        n = n.checked_add(2).expect("prime search overflow");
    }
}

/// Generates a random prime with exactly `bits` significant bits using the
/// provided generator. `bits` must be in `[3, 63]` (odd primes with the top
/// bit set, leaving headroom for u64 arithmetic).
pub fn random_prime(rng: &mut crate::rng::DetRng, bits: u32) -> u64 {
    assert!(
        (3..=63).contains(&bits),
        "bits must be in [3, 63], got {bits}"
    );
    loop {
        let mut cand = rng.next_u64() >> (64 - bits);
        cand |= 1 << (bits - 1); // exact bit length
        cand |= 1; // odd
        if is_prime(cand) {
            return cand;
        }
    }
}

/// Jacobi symbol (a/n) for odd positive n. Returns −1, 0, or 1.
pub fn jacobi(mut a: u64, mut n: u64) -> i32 {
    assert!(n % 2 == 1 && n > 0, "Jacobi symbol needs odd positive n");
    a %= n;
    let mut result = 1i32;
    while a != 0 {
        while a.is_multiple_of(2) {
            a /= 2;
            // (2/n) = (−1)^((n²−1)/8)
            if n % 8 == 3 || n % 8 == 5 {
                result = -result;
            }
        }
        core::mem::swap(&mut a, &mut n);
        // Quadratic reciprocity.
        if a % 4 == 3 && n % 4 == 3 {
            result = -result;
        }
        a %= n;
    }
    if n == 1 {
        result
    } else {
        0
    }
}

/// Legendre-symbol test: is `a` a quadratic residue mod odd prime `p`?
///
/// Convention follows the encoding's needs: `a ≡ 0 (mod p)` counts as a
/// residue (it has the square root 0). Uses Euler's criterion.
pub fn is_quadratic_residue(a: u64, p: u64) -> bool {
    debug_assert!(p > 2 && is_prime(p), "p must be an odd prime");
    let a = a % p;
    if a == 0 {
        return true;
    }
    pow_mod(a, (p - 1) / 2, p) == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn mul_mod_no_overflow() {
        let big = u64::MAX - 58; // prime near 2^64
        assert_eq!(mul_mod(big - 1, big - 1, big), 1);
        assert_eq!(mul_mod(0, 123, 7), 0);
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1000), 24);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(3, 4, 1), 0);
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) ≡ 1 mod p for prime p, gcd(a,p)=1.
        let p = 1_000_000_007u64;
        for a in [2u64, 3, 10, 999_999_999] {
            assert_eq!(pow_mod(a, p - 1, p), 1);
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn primality_small_numbers() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        let composites = [0u64, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 35, 49];
        for &p in &primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for &c in &composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn primality_sieve_cross_check() {
        // Cross-check against a classic sieve up to 10_000.
        let n = 10_000usize;
        let mut sieve = vec![true; n + 1];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..=n {
            if !sieve[i] {
                continue;
            }
            for j in (i * i..=n).step_by(i) {
                sieve[j] = false;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..=n {
            assert_eq!(is_prime(i as u64), sieve[i], "mismatch at {i}");
        }
    }

    #[test]
    fn primality_large_known() {
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(1_000_000_009));
        assert!(!is_prime(1_000_000_007u64 * 3));
        assert!(is_prime(u64::MAX - 58)); // 2^64 - 59 is prime
        assert!(!is_prime(u64::MAX)); // 3·5·17·257·641·65537·6700417

        // Strong pseudoprime to base 2 only: 3215031751 = 151·751·28351.
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(1_000_000_000), 1_000_000_007);
    }

    #[test]
    fn random_prime_has_requested_bits() {
        let mut rng = DetRng::seed_from_u64(99);
        for bits in [8u32, 16, 31, 48, 63] {
            let p = random_prime(&mut rng, bits);
            assert!(is_prime(p));
            assert_eq!(64 - p.leading_zeros(), bits, "p={p} bits");
        }
    }

    #[test]
    fn random_prime_deterministic() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        assert_eq!(random_prime(&mut a, 32), random_prime(&mut b, 32));
    }

    #[test]
    fn jacobi_against_legendre_for_primes() {
        // For odd prime p, jacobi(a,p) must agree with Euler's criterion.
        for &p in &[3u64, 5, 7, 11, 13, 101, 1009] {
            for a in 0..p.min(60) {
                let j = jacobi(a, p);
                let expect = if a % p == 0 {
                    0
                } else if pow_mod(a, (p - 1) / 2, p) == 1 {
                    1
                } else {
                    -1
                };
                assert_eq!(j, expect, "jacobi({a},{p})");
            }
        }
    }

    #[test]
    fn jacobi_multiplicativity() {
        let n = 9907u64; // odd (also prime, but property holds generally)
        for a in 1..40u64 {
            for b in 1..40u64 {
                assert_eq!(jacobi(a * b, n), jacobi(a, n) * jacobi(b, n));
            }
        }
    }

    #[test]
    fn quadratic_residues_of_23() {
        // QRs mod 23: {1,2,3,4,6,8,9,12,13,16,18}.
        let qrs = [1u64, 2, 3, 4, 6, 8, 9, 12, 13, 16, 18];
        for a in 1..23u64 {
            let expect = qrs.contains(&a);
            assert_eq!(is_quadratic_residue(a, 23), expect, "a={a}");
        }
        assert!(is_quadratic_residue(0, 23));
        assert!(is_quadratic_residue(23 + 4, 23));
    }

    #[test]
    fn residues_closed_under_squaring() {
        let mut rng = DetRng::seed_from_u64(3);
        let p = random_prime(&mut rng, 40);
        for _ in 0..200 {
            let x = rng.next_u64() % p;
            assert!(is_quadratic_residue(mul_mod(x, x, p), p));
        }
    }

    #[test]
    fn half_of_units_are_residues() {
        let p = 10_007u64;
        let count = (1..p).filter(|&a| is_quadratic_residue(a, p)).count() as u64;
        assert_eq!(count, (p - 1) / 2);
    }
}
