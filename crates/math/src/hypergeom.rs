//! Hypergeometric sampling model from §5 of the paper.
//!
//! The attack analysis models Mallory's random alteration of a
//! characteristic subset as sampling without replacement: "x + t balls are
//! randomly removed from a bowl with a total of y balls. If the bowl
//! contained exactly x black balls, what is the probability that the x + t
//! removals emptied the bowl of all x black balls?" The answer (paper,
//! §5) is `P(x+t; x; y) = C(y−x, t) / C(y, x+t)`.

use crate::special::{ln_binomial, ln_to_log2};

/// The paper's `P(x+t; x; y)`: probability that drawing `x+t` of `y` balls
/// without replacement captures all `x` black balls.
///
/// Returns 0 when the draw is too small (`draws < x`) and 1 when the draw
/// takes everything. Panics if `draws > y` or `x > y` (not a valid
/// experiment).
pub fn all_marked_drawn(draws: u64, x: u64, y: u64) -> f64 {
    assert!(x <= y, "more black balls than balls (x={x}, y={y})");
    assert!(draws <= y, "more draws than balls (draws={draws}, y={y})");
    if draws < x {
        return 0.0;
    }
    if x == 0 {
        return 1.0;
    }
    let t = draws - x;
    // C(y-x, t) / C(y, draws), in log space for robustness.
    (ln_binomial(y - x, t) - ln_binomial(y, draws)).exp()
}

/// Hypergeometric PMF: probability of exactly `k` successes when drawing
/// `n` from a population of `total` containing `succ` successes.
pub fn pmf(k: u64, n: u64, succ: u64, total: u64) -> f64 {
    assert!(
        succ <= total && n <= total,
        "invalid hypergeometric parameters"
    );
    if k > n || k > succ || (n - k) > (total - succ) {
        return 0.0;
    }
    (ln_binomial(succ, k) + ln_binomial(total - succ, n - k) - ln_binomial(total, n)).exp()
}

/// Upper tail P[K >= k] of the hypergeometric distribution.
pub fn tail_ge(k: u64, n: u64, succ: u64, total: u64) -> f64 {
    let hi = n.min(succ);
    if k > hi {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in k..=hi {
        acc += pmf(i, n, succ, total);
    }
    acc.min(1.0)
}

/// Expresses a probability as the "one in 2^k" exponent the paper uses for
/// court-time confidence statements. Returns `f64::INFINITY` for p == 0.
pub fn as_log2_odds(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::INFINITY;
    }
    -ln_to_log2(p.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rel(a: f64, b: f64, tol: f64) {
        let denom = b.abs().max(1e-300);
        assert!((a - b).abs() / denom <= tol, "{a} !~ {b}");
    }

    #[test]
    fn paper_worked_example() {
        // §5: "for a1 = 5, a = 6, a4 = 50%, a2 = 50% we get the average
        // probability P(15; 10; 21) ≈ 0.85%".
        // a = 6 → y = a(a+1)/2 = 21 total m_ij values;
        // a4 = 50% → x = ⌈0.5·21⌉ ≈ 10 active values;
        // a2 = 50% of items altered → c_m = ½·a·a2·(2a − a·a2 + 1) = 15.
        let p = all_marked_drawn(15, 10, 21);
        assert_rel(p, 0.008_5, 0.03); // ≈ 0.85 %, paper rounds
    }

    #[test]
    fn paper_cm_formula_matches_example() {
        // c_m = ½ a a2 (2a − a·a2 + 1) with a = 6, a2 = 0.5 → 15.
        let a = 6.0f64;
        let a2 = 0.5f64;
        let cm = 0.5 * a * a2 * (2.0 * a - a * a2 + 1.0);
        assert_rel(cm, 15.0, 1e-12);
    }

    #[test]
    fn exhaustive_draw_is_certain() {
        assert_eq!(all_marked_drawn(21, 10, 21), 1.0);
        assert_eq!(all_marked_drawn(5, 0, 5), 1.0);
    }

    #[test]
    fn insufficient_draw_is_impossible() {
        assert_eq!(all_marked_drawn(9, 10, 21), 0.0);
    }

    #[test]
    fn all_marked_matches_direct_combinatorics() {
        // P = C(y-x, t)/C(y, x+t) checked against exact integers.
        use crate::special::binomial_exact;
        for &(draws, x, y) in &[(5u64, 2u64, 10u64), (7, 3, 12), (4, 4, 8), (6, 1, 6)] {
            let t = draws - x;
            let expect =
                binomial_exact(y - x, t).unwrap() as f64 / binomial_exact(y, draws).unwrap() as f64;
            assert_rel(all_marked_drawn(draws, x, y), expect, 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "more draws than balls")]
    fn too_many_draws_panics() {
        all_marked_drawn(22, 10, 21);
    }

    #[test]
    fn pmf_sums_to_one() {
        let (n, succ, total) = (7u64, 5u64, 15u64);
        let sum: f64 = (0..=n).map(|k| pmf(k, n, succ, total)).sum();
        assert_rel(sum, 1.0, 1e-10);
    }

    #[test]
    fn pmf_mean_matches_formula() {
        // E[K] = n * succ / total.
        let (n, succ, total) = (8u64, 6u64, 20u64);
        let mean: f64 = (0..=n).map(|k| k as f64 * pmf(k, n, succ, total)).sum();
        assert_rel(mean, n as f64 * succ as f64 / total as f64, 1e-10);
    }

    #[test]
    fn pmf_impossible_cases_zero() {
        assert_eq!(pmf(6, 5, 10, 20), 0.0); // k > n
        assert_eq!(pmf(4, 8, 3, 20), 0.0); // k > succ
        assert_eq!(pmf(0, 18, 3, 20), 0.0); // can't avoid successes
    }

    #[test]
    fn tail_is_monotone_and_bounded() {
        let (n, succ, total) = (10u64, 7u64, 25u64);
        let mut prev = 1.0 + 1e-12;
        for k in 0..=n {
            let t = tail_ge(k, n, succ, total);
            assert!(t <= prev);
            assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
        assert_eq!(tail_ge(0, n, succ, total), 1.0);
    }

    #[test]
    fn tail_relates_to_all_marked() {
        // Drawing all x black balls in x+t draws == K >= x with n = x+t.
        let (x, t, y) = (4u64, 3u64, 12u64);
        assert_rel(
            all_marked_drawn(x + t, x, y),
            tail_ge(x, x + t, x, y),
            1e-10,
        );
    }

    #[test]
    fn log2_odds_examples() {
        assert_rel(as_log2_odds(0.5), 1.0, 1e-12);
        assert_rel(as_log2_odds(2.0f64.powi(-20)), 20.0, 1e-9);
        assert_eq!(as_log2_odds(0.0), f64::INFINITY);
    }
}
