//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (synthetic sensors, attack
//! models, experiment sweeps) draws from [`DetRng`], a from-scratch
//! xoshiro256++ generator seeded through SplitMix64. Determinism across
//! platforms and runs is a hard requirement for the experiment harness: a
//! figure regenerated twice must produce identical rows.
//!
//! xoshiro256++ is the public-domain generator of Blackman & Vigna
//! (<https://prng.di.unimi.it/>); SplitMix64 is the recommended seeder.

/// A deterministic xoshiro256++ random number generator.
///
/// Not cryptographically secure — the *watermarking keys* in this workspace
/// never come from here; they are caller-supplied secrets. `DetRng` only
/// drives simulation workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded with SplitMix64, so nearby seeds
    /// yield statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator (e.g. one per experiment cell).
    pub fn fork(&mut self) -> Self {
        DetRng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi` and both finite.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased multiply-shift
    /// rejection method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true` (`p` clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw via the Box–Muller transform.
    ///
    /// Two normals are produced per transform; the spare is cached so
    /// consecutive calls cost one transform per two draws.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] to keep ln(u1) finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below_usize(xs.len())]
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic). Panics if `k > n`. O(n) via partial Fisher–Yates.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.uniform(-3.5, 2.25);
            assert!((-3.5..2.25).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn below_powers_of_two() {
        let mut r = DetRng::seed_from_u64(13);
        for _ in 0..1000 {
            assert!(r.below(16) < 16);
            assert!(r.below(1) == 0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::seed_from_u64(0).below(0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(17);
        let n = 10u64;
        let trials = 100_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..trials {
            counts[r.below(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::seed_from_u64(19);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.standard_normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_scaled() {
        let mut r = DetRng::seed_from_u64(21);
        let n = 100_000;
        let (mu, sd) = (5.0, 2.0);
        let mut sum = 0.0;
        for _ in 0..n {
            sum += r.normal(mu, sd);
        }
        assert!((sum / n as f64 - mu).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability, a 100-element shuffle moved something.
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::seed_from_u64(29);
        let idx = r.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_range() {
        let mut r = DetRng::seed_from_u64(31);
        let mut idx = r.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = DetRng::seed_from_u64(37);
        let mut c = a.fork();
        // Forked stream differs from parent's continuation.
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(41);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + 1e-9)));
    }

    #[test]
    fn golden_first_outputs() {
        // Pins the generator's output so experiment reproducibility is
        // detectable: if this test changes, every figure changes.
        let mut r = DetRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = DetRng::seed_from_u64(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}
