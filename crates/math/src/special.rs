//! Special functions and combinatorics.
//!
//! §5 of the paper computes false-positive probabilities of the form
//! `(2^{-τ·a(a+1)/2})^{tς/(ξθ)}` and hypergeometric ratios of binomial
//! coefficients. These underflow f64 almost immediately, so everything here
//! works in log space, with exact integer binomials where they fit.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for x > 0; sufficient for the
/// probability work in this workspace.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Godfrey / numerical recipes lineage).
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// ln(n!) via `ln_gamma(n+1)`, exact-ish for all n representable in f64.
pub fn ln_factorial(n: u64) -> f64 {
    // Small table keeps the hot path exact and fast. (Entries are ln(n!)
    // literals; clippy flags ln(2!) as an "approximate LN_2".)
    #[allow(clippy::approx_constant, clippy::excessive_precision)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_683,
        27.899_271_383_840_894,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// ln C(n, k); `-inf` when k > n.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact binomial coefficient in u128, or `None` on overflow / k > n.
///
/// Uses the multiplicative formula with interleaved division, so any value
/// that fits in u128 is computed exactly.
pub fn binomial_exact(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return None;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc *= (n - i); acc /= (i + 1);  — kept exact because
        // C(n, i+1) = C(n, i) * (n-i) / (i+1) is always integral.
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// log2 of a probability given as ln(p). Convenience for reporting
/// confidences as "one in 2^k".
pub fn ln_to_log2(ln_p: f64) -> f64 {
    ln_p / core::f64::consts::LN_2
}

/// Binomial tail P[X >= k] for X ~ Bin(n, p), computed in a numerically
/// careful direct sum (n is small in all our uses: number of voting
/// extremes). Used to turn a detected watermark bias into a false-positive
/// probability under the null hypothesis p = 1/2.
pub fn binomial_tail_ge(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let mut total = 0.0f64;
    for i in k..=n {
        let ln_term = ln_binomial(n, i) + i as f64 * ln_p + (n - i) as f64 * ln_q;
        total += ln_term.exp();
    }
    total.min(1.0)
}

/// Error function via Abramowitz–Stegun 7.1.26 (|err| ≤ 1.5e-7).
/// Used for gaussian-tail sanity checks in the experiment harness.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rel(a: f64, b: f64, tol: f64) {
        let denom = b.abs().max(1e-300);
        assert!((a - b).abs() / denom <= tol, "{a} !~ {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(3)=2, Γ(4)=6, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert_rel(ln_gamma(3.0), 2.0f64.ln(), 1e-12);
        assert_rel(ln_gamma(4.0), 6.0f64.ln(), 1e-12);
        assert_rel(ln_gamma(0.5), core::f64::consts::PI.sqrt().ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) for a sweep of x.
        for i in 1..50 {
            let x = i as f64 * 0.37 + 0.1;
            assert_rel(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_table_and_formula_agree() {
        for n in 0..30u64 {
            let direct: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert_rel(ln_factorial(n).max(1e-300), direct.max(1e-300), 1e-10);
        }
    }

    #[test]
    fn binomial_exact_small() {
        assert_eq!(binomial_exact(0, 0), Some(1));
        assert_eq!(binomial_exact(5, 2), Some(10));
        assert_eq!(binomial_exact(10, 5), Some(252));
        assert_eq!(binomial_exact(52, 5), Some(2_598_960));
        assert_eq!(binomial_exact(5, 6), None);
    }

    #[test]
    fn binomial_exact_symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(binomial_exact(n, k), binomial_exact(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial_exact(n, k).unwrap();
                let rhs = binomial_exact(n - 1, k - 1).unwrap() + binomial_exact(n - 1, k).unwrap();
                assert_eq!(lhs, rhs, "Pascal fails at ({n},{k})");
            }
        }
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in [10u64, 30, 60, 100] {
            for k in [0u64, 1, 3, n / 2] {
                let exact = binomial_exact(n, k).unwrap() as f64;
                assert_rel(ln_binomial(n, k).exp(), exact, 1e-9);
            }
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_tail_properties() {
        // P[X >= 0] = 1; fair-coin symmetry; paper footnote 5:
        // bias of b one-sided events at p=1/2 has probability 2^-b each.
        assert_eq!(binomial_tail_ge(10, 0, 0.5), 1.0);
        assert_eq!(binomial_tail_ge(10, 11, 0.5), 0.0);
        assert_rel(binomial_tail_ge(10, 10, 0.5), 2.0f64.powi(-10), 1e-9);
        // Monotone in k.
        let mut prev = 1.0;
        for k in 0..=20u64 {
            let p = binomial_tail_ge(20, k, 0.4);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn binomial_tail_known_value() {
        // P[X >= 8 | n=10, p=0.5] = (45 + 10 + 1)/1024.
        assert_rel(binomial_tail_ge(10, 8, 0.5), 56.0 / 1024.0, 1e-9);
    }

    #[test]
    fn erf_and_cdf_anchor_points() {
        // A&S 7.1.26 is accurate to ~1.5e-7 absolute, including at 0.
        assert!(erf(0.0).abs() < 1e-6);
        assert_rel(erf(1.0), 0.842_700_79, 1e-5);
        assert_rel(normal_cdf(0.0), 0.5, 1e-6);
        assert_rel(normal_cdf(1.959_964), 0.975, 1e-4);
        assert!(normal_cdf(-8.0) < 1e-10);
    }

    #[test]
    fn ln_to_log2_roundtrip() {
        let p: f64 = 2.0f64.powi(-15);
        assert_rel(ln_to_log2(p.ln()), -15.0, 1e-12);
    }
}
