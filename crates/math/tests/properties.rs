//! Property-based tests of the math substrate.

use proptest::prelude::*;
use wms_math::hypergeom;
use wms_math::numtheory::{gcd, is_prime, jacobi, mul_mod, pow_mod};
use wms_math::special::{binomial_exact, binomial_tail_ge, ln_binomial};
use wms_math::{summarize, DetRng, RunningStats, SlidingMoments};

proptest! {
    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = DetRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(r.below(n) < n);
        }
    }

    #[test]
    fn rng_uniform_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.0f64..1e6) {
        let mut r = DetRng::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let x = r.uniform(lo, hi);
            prop_assert!(x >= lo && (x < hi || width == 0.0));
        }
    }

    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = DetRng::seed_from_u64(seed);
        let mut b = DetRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_permutes(seed in any::<u64>(), len in 0usize..200) {
        let mut r = DetRng::seed_from_u64(seed);
        let mut xs: Vec<usize> = (0..len).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn running_stats_match_batch(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut rs = RunningStats::new();
        for &v in &values {
            rs.push(v);
        }
        let s = summarize(&values).unwrap();
        prop_assert!((rs.mean() - s.mean).abs() <= 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!((rs.std_dev() - s.std_dev).abs() <= 1e-5 * (1.0 + s.std_dev));
        prop_assert_eq!(rs.min(), s.min);
        prop_assert_eq!(rs.max(), s.max);
    }

    #[test]
    fn stats_merge_associative(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut whole = RunningStats::new();
        for &v in a.iter().chain(&b) {
            whole.push(v);
        }
        let mut left = RunningStats::new();
        for &v in &a {
            left.push(v);
        }
        let mut right = RunningStats::new();
        for &v in &b {
            right.push(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 + 1e-9 * whole.mean().abs());
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-7 + 1e-7 * whole.variance());
    }

    #[test]
    fn sliding_moments_insert_remove_inverse(
        base in prop::collection::vec(-100f64..100.0, 1..50),
        extra in prop::collection::vec(-100f64..100.0, 1..20),
    ) {
        let mut m = SlidingMoments::new();
        for &v in &base {
            m.insert(v);
        }
        let mean0 = m.mean();
        let var0 = m.variance();
        for &v in &extra {
            m.insert(v);
        }
        for &v in extra.iter().rev() {
            m.remove(v);
        }
        prop_assert!((m.mean() - mean0).abs() < 1e-7);
        prop_assert!((m.variance() - var0).abs() < 1e-5);
    }

    #[test]
    fn pow_mod_matches_naive(a in 0u64..1000, e in 0u64..20, m in 1u64..10_000) {
        let mut expect = if m == 1 { 0 } else { 1u64 % m };
        for _ in 0..e {
            expect = (expect * (a % m)) % m;
        }
        prop_assert_eq!(pow_mod(a, e, m), expect);
    }

    #[test]
    fn mul_mod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1u64..u64::MAX) {
        prop_assert_eq!(mul_mod(a, b, m) as u128, (a as u128 * b as u128) % m as u128);
    }

    #[test]
    fn gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let g = gcd(a, b);
        prop_assert!(g > 0 && a % g == 0 && b % g == 0);
    }

    #[test]
    fn primes_have_no_small_factors(n in 4u64..1_000_000) {
        if is_prime(n) {
            let mut d = 2u64;
            while d * d <= n {
                prop_assert!(n % d != 0, "{} divisible by {}", n, d);
                d += 1;
            }
        }
    }

    #[test]
    fn jacobi_in_range_and_periodic(a in 0u64..10_000, k in 1u64..100) {
        let n = 2 * k + 1; // odd
        let j = jacobi(a, n);
        prop_assert!((-1..=1).contains(&j));
        prop_assert_eq!(j, jacobi(a + n, n));
    }

    #[test]
    fn binomial_log_vs_exact(n in 0u64..60, k in 0u64..60) {
        if k <= n {
            let exact = binomial_exact(n, k).unwrap() as f64;
            let approx = ln_binomial(n, k).exp();
            prop_assert!((approx - exact).abs() / exact.max(1.0) < 1e-8);
        } else {
            prop_assert!(binomial_exact(n, k).is_none());
        }
    }

    #[test]
    fn binomial_tail_monotone_in_k(n in 1u64..40, p in 0.01f64..0.99) {
        let mut prev = 1.0 + 1e-12;
        for k in 0..=n {
            let t = binomial_tail_ge(n, k, p);
            prop_assert!(t <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
    }

    #[test]
    fn hypergeom_pmf_normalizes(total in 1u64..40, succ_frac in 0.0f64..1.0, n_frac in 0.0f64..1.0) {
        let succ = (succ_frac * total as f64) as u64;
        let n = 1 + (n_frac * (total - 1) as f64) as u64;
        let sum: f64 = (0..=n).map(|k| hypergeom::pmf(k, n, succ, total)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-8, "sum = {}", sum);
    }

    #[test]
    fn all_marked_drawn_is_probability(y in 1u64..50, xf in 0.0f64..1.0, df in 0.0f64..1.0) {
        let x = (xf * y as f64) as u64;
        let draws = (df * y as f64) as u64;
        let p = hypergeom::all_marked_drawn(draws, x, y);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
