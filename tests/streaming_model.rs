//! Integration tests of the single-pass streaming contract: incremental
//! push/finish equals batch embedding, the window bound is honored, and
//! streams round-trip through CSV persistence.

use std::sync::Arc;
use wms::prelude::*;
use wms_core::WmParams;
use wms_sensors::{generate_irtf, IrtfConfig};

fn params() -> WmParams {
    WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        min_active: Some(12),
        window: 512,
        ..WmParams::default()
    }
}

fn scheme() -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(0xFEED))).unwrap()
}

/// IRTF-like stream: diverse extreme magnitudes spread across msb
/// buckets, so the selection criterion can find carriers (a constant-
/// amplitude oscillator funnels every extreme into one bucket — an
/// inherent property of §3.2's msb-keyed selection).
fn stream(n: usize) -> Vec<Sample> {
    let cfg = IrtfConfig {
        readings: n,
        ..IrtfConfig::default()
    };
    let raw = generate_irtf(&cfg, 77);
    normalize_stream(&raw).unwrap().0
}

#[test]
fn incremental_push_equals_batch() {
    let input = stream(6000);
    let (batch, batch_stats) = Embedder::embed_stream(
        scheme(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
        &input,
    )
    .unwrap();

    let mut e = Embedder::new(
        scheme(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
    )
    .unwrap();
    let mut incremental = Vec::with_capacity(input.len());
    for &s in &input {
        e.push_into(s, &mut incremental);
    }
    e.finish_into(&mut incremental);

    assert_eq!(batch.len(), incremental.len());
    for (a, b) in batch.iter().zip(&incremental) {
        assert_eq!(a.value, b.value, "at index {}", a.index);
    }
    assert_eq!(*e.stats(), batch_stats);
}

#[test]
fn emission_latency_bounded_by_window() {
    // Single-pass bound: by the time n samples went in, at least
    // n − $ must have come out (nothing is buffered beyond the window).
    let input = stream(4000);
    let window = params().window;
    let mut e = Embedder::new(
        scheme(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
    )
    .unwrap();
    let mut emitted;
    let mut out = Vec::new();
    for (i, &s) in input.iter().enumerate() {
        e.push_into(s, &mut out);
        emitted = out.len();
        assert!(
            emitted + window > i,
            "at input {} only {} emitted with window {}",
            i + 1,
            emitted,
            window
        );
    }
    e.finish_into(&mut out);
    emitted = out.len();
    assert_eq!(emitted, input.len());
}

#[test]
fn emission_preserves_order_and_provenance() {
    let input = stream(3000);
    let mut e = Embedder::new(
        scheme(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
    )
    .unwrap();
    let mut out = Vec::new();
    for &s in &input {
        e.push_into(s, &mut out);
    }
    e.finish_into(&mut out);
    for (i, s) in out.iter().enumerate() {
        assert_eq!(s.index, i as u64);
        assert_eq!(s.span.start, i as u64, "provenance must be untouched");
    }
}

#[test]
fn csv_roundtrip_preserves_watermark() {
    let input = stream(8000);
    let s = scheme();
    let (marked, stats) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
        &input,
    )
    .unwrap();
    assert!(stats.embedded > 10);

    let mut path = std::env::temp_dir();
    path.push(format!("wms-roundtrip-{}.csv", std::process::id()));
    wms_stream::csv::write_values(&path, &values_of(&marked)).unwrap();
    let restored = wms_stream::csv::read_values(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let report = Detector::detect_stream(
        s,
        Arc::new(MultiHashEncoder),
        1,
        &restored,
        TransformHint::None,
    )
    .unwrap();
    assert!(
        report.bias() as u64 >= stats.embedded / 2,
        "bias {} after CSV roundtrip",
        report.bias()
    );
}

#[test]
fn detector_streaming_matches_batch_helper() {
    let input = stream(4000);
    let s = scheme();
    let (marked, _) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
        &input,
    )
    .unwrap();
    let batch = Detector::detect_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        1,
        &marked,
        TransformHint::None,
    )
    .unwrap();
    let mut d = Detector::new(s, Arc::new(MultiHashEncoder), 1, 1.0).unwrap();
    for &x in &marked {
        d.push(x);
    }
    let incr = d.finish();
    assert_eq!(batch.buckets, incr.buckets);
    assert_eq!(batch.majors_seen, incr.majors_seen);
}
