//! Integration tests of multi-bit ownership payloads: embedding a short
//! bitstring and reconstructing it via the §3.3 voting buckets.

use std::sync::Arc;
use wms::prelude::*;
use wms_core::WmParams;
use wms_stream::samples_from_values;

/// Stream whose extreme magnitudes sweep msb buckets so selection can
/// address every watermark bit (see detector unit tests for why).
fn msb_diverse_stream(n: usize) -> Vec<Sample> {
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            let amp = 0.08 + 0.38 * (0.5 + 0.5 * (t * core::f64::consts::TAU / 4096.0).sin());
            amp * (t * core::f64::consts::TAU / 60.0).sin()
                + 0.02 * (t * core::f64::consts::TAU / 17.0).sin()
        })
        .collect();
    samples_from_values(&values)
}

fn params(theta: u64) -> WmParams {
    WmParams {
        radius: 0.01,
        degree: 3,
        max_subset: 4,
        label_len: 4,
        label_stride: 1,
        label_msb_bits: 2,
        selection_modulus: theta,
        min_active: Some(8),
        window: 512,
        ..WmParams::default()
    }
}

#[test]
fn four_bit_payload_roundtrip() {
    let wm = Watermark::from_bits(vec![true, false, false, true]);
    let s = Scheme::new(params(5), KeyedHash::md5(Key::from_u64(0x41CE))).unwrap();
    let (marked, stats) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        wm.clone(),
        &msb_diverse_stream(24_000),
    )
    .unwrap();
    assert!(stats.embedded > 40, "{stats:?}");
    let report = Detector::detect_stream(
        s,
        Arc::new(MultiHashEncoder),
        4,
        &marked,
        TransformHint::None,
    )
    .unwrap();
    let rec = report.recovered(1);
    assert!(
        rec.exactly_matches(&wm),
        "recovered {rec} != {wm}; buckets {:?}",
        report.buckets
    );
}

#[test]
fn payload_survives_light_sampling() {
    let wm = Watermark::from_bits(vec![true, true, false]);
    let s = Scheme::new(params(4), KeyedHash::md5(Key::from_u64(0x0420))).unwrap();
    let (marked, _) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        wm.clone(),
        &msb_diverse_stream(30_000),
    )
    .unwrap();
    let attacked = UniformSampling::new(2, 3).apply(&marked);
    let report = Detector::detect_stream(
        s,
        Arc::new(MultiHashEncoder),
        3,
        &attacked,
        TransformHint::Known(2.0),
    )
    .unwrap();
    let rec = report.recovered(0);
    // All decided bits must be correct; at degree 2 every bit should have
    // accumulated some correct margin.
    assert!(
        rec.match_fraction(&wm) >= 2.0 / 3.0,
        "recovered {rec} vs {wm} (buckets {:?})",
        report.buckets
    );
}

#[test]
fn hamming_distance_degrades_gracefully_under_noise() {
    let wm = Watermark::from_bits(vec![true, false, true, false]);
    let s = Scheme::new(params(5), KeyedHash::md5(Key::from_u64(0x7357))).unwrap();
    let (marked, _) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        wm.clone(),
        &msb_diverse_stream(24_000),
    )
    .unwrap();
    let gentle = EpsilonAttack::uniform(0.05, 0.05, 1).apply(&marked);
    let harsh = EpsilonAttack::uniform(0.9, 0.9, 1).apply(&marked);
    let detect = |data: &[Sample]| {
        Detector::detect_stream(
            s.clone(),
            Arc::new(MultiHashEncoder),
            4,
            data,
            TransformHint::None,
        )
        .unwrap()
    };
    let g = detect(&gentle);
    let h = detect(&harsh);
    // Sum of per-bit correct margins must shrink under the harsher attack.
    let margin = |r: &wms_core::DetectionReport| -> i64 {
        r.buckets
            .iter()
            .zip(wm.bits())
            .map(|(b, &want)| if want { b.bias() } else { -b.bias() })
            .sum()
    };
    assert!(
        margin(&g) > margin(&h),
        "gentle margin {} should exceed harsh {}",
        margin(&g),
        margin(&h)
    );
    assert!(margin(&g) > 0);
}
