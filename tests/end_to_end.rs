//! Cross-crate integration tests: the paper's headline resilience claims,
//! exercised end-to-end (sensor → normalize → embed → attack → detect).
//!
//! Debug builds are slow, so these use the reduced multi-hash search
//! (min_active above the noise floor) on mid-sized streams; the full
//! convention is exercised by the release-mode experiment binaries.

use std::sync::Arc;
use wms::prelude::*;
use wms_core::WmParams;
use wms_sensors::{generate_irtf, IrtfConfig};
use wms_stream::Pipeline;

fn params() -> WmParams {
    WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        min_active: Some(12),
        ..WmParams::default()
    }
}

fn scheme(key: u64) -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(key))).unwrap()
}

fn marked_reference(key: u64, n: usize) -> (Vec<Sample>, Scheme, u64) {
    let cfg = IrtfConfig {
        readings: n,
        ..IrtfConfig::default()
    };
    let raw = generate_irtf(&cfg, 2003);
    let (stream, _) = normalize_stream(&raw).unwrap();
    let s = scheme(key);
    let (marked, stats) = Embedder::embed_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
        &stream,
    )
    .unwrap();
    assert!(
        stats.embedded > 20,
        "need a meaningful carrier population: {stats:?}"
    );
    (marked, s, stats.embedded)
}

fn detect_bias(s: &Scheme, data: &[Sample], chi: f64) -> i64 {
    Detector::detect_stream(
        s.clone(),
        Arc::new(MultiHashEncoder),
        1,
        data,
        TransformHint::Known(chi),
    )
    .unwrap()
    .bias()
}

#[test]
fn untransformed_stream_detects_strongly() {
    let (marked, s, embedded) = marked_reference(1, 6000);
    let bias = detect_bias(&s, &marked, 1.0);
    assert!(
        bias as u64 >= embedded / 2,
        "bias {bias} vs embedded {embedded}"
    );
}

#[test]
fn survives_sampling_degree_3() {
    let (marked, s, _) = marked_reference(2, 8000);
    let attacked = UniformSampling::new(3, 7).apply(&marked);
    let bias = detect_bias(&s, &attacked, 3.0);
    assert!(
        bias >= 7,
        "sampling-3 bias {bias} too weak (P_fp 2^-{bias})"
    );
}

#[test]
fn survives_summarization_degree_2() {
    let (marked, s, _) = marked_reference(3, 8000);
    let attacked = Summarization::new(2).apply(&marked);
    let bias = detect_bias(&s, &attacked, 2.0);
    assert!(bias >= 7, "summarization-2 bias {bias} too weak");
}

#[test]
fn survives_epsilon_attack_30pct() {
    let (marked, s, _) = marked_reference(4, 8000);
    let attacked = EpsilonAttack::uniform(0.3, 0.1, 5).apply(&marked);
    let bias = detect_bias(&s, &attacked, 1.0);
    assert!(bias >= 7, "epsilon(30%,10%) bias {bias} too weak");
}

#[test]
fn survives_combined_pipeline() {
    let (marked, s, _) = marked_reference(5, 10_000);
    let attacked = Pipeline::new()
        .then(UniformSampling::new(2, 9))
        .then(Summarization::new(2))
        .apply(&marked);
    let bias = detect_bias(&s, &attacked, 4.0);
    assert!(bias >= 4, "combined 2x2 pipeline bias {bias} too weak");
}

#[test]
fn survives_segmentation() {
    let (marked, s, _) = marked_reference(6, 12_000);
    let segment = Segmentation {
        start: 4000,
        len: 5000,
    }
    .apply(&marked);
    let bias = detect_bias(&s, &segment, 1.0);
    assert!(bias >= 10, "segment bias {bias} too weak");
}

#[test]
fn wrong_key_sees_noise() {
    let (marked, _, _) = marked_reference(7, 6000);
    let wrong = scheme(0xDEAD);
    let report = Detector::detect_stream(
        wrong,
        Arc::new(MultiHashEncoder),
        1,
        &marked,
        TransformHint::None,
    )
    .unwrap();
    let b = report.bias().unsigned_abs();
    assert!(
        b * b <= 9 * (report.verdicts + 1),
        "wrong key bias {b} over {} verdicts exceeds noise",
        report.verdicts
    );
}

#[test]
fn unwatermarked_reference_is_clean() {
    let cfg = IrtfConfig {
        readings: 6000,
        ..IrtfConfig::default()
    };
    let raw = generate_irtf(&cfg, 999);
    let (stream, _) = normalize_stream(&raw).unwrap();
    let report = Detector::detect_stream(
        scheme(8),
        Arc::new(MultiHashEncoder),
        1,
        &stream,
        TransformHint::None,
    )
    .unwrap();
    let b = report.bias().unsigned_abs();
    assert!(b * b <= 9 * (report.verdicts + 1), "clean-data bias {b}");
    // κ-construction leaves the bit undefined on clean data.
    let rec = report.recovered((report.verdicts / 2).max(1));
    assert_eq!(rec.bits[0], None);
}

#[test]
fn linear_change_neutralized_by_renormalization() {
    let (marked, s, embedded) = marked_reference(9, 6000);
    // Mallory rescales: x -> 3x - 1 (e.g. unit conversion).
    let attacked = wms_attacks::LinearChange {
        scale: 3.0,
        offset: -1.0,
    }
    .apply(&marked);
    // Detection re-normalizes; min–max normalization is affine-invariant,
    // so the recovered normalized values are bit-identical.
    let values = values_of(&attacked);
    let renorm = wms_stream::Normalizer::fit(&values).unwrap();
    let renormalized: Vec<Sample> = attacked
        .iter()
        .map(|x| x.with_value(renorm.normalize(x.value)))
        .collect();
    let bias = detect_bias(&s, &renormalized, 1.0);
    assert!(
        bias as u64 >= embedded / 2,
        "affine attack must be fully neutralized: bias {bias} vs embedded {embedded}"
    );
}
