//! Statistical validation: the §5 closed forms against empirical
//! measurement of the actual implementation — the kind of evidence a
//! reviewer would ask for before trusting the court-confidence numbers.

use std::sync::Arc;
use wms::prelude::*;
use wms_core::encoding::SubsetEncoder;
use wms_core::{analysis, Label, WmParams};
use wms_math::DetRng;

fn scheme(key: u64, p: WmParams) -> Scheme {
    Scheme::new(p, KeyedHash::md5(Key::from_u64(key))).unwrap()
}

/// The multi-hash search is a geometric trial with success probability
/// `2^-(τ·a(a+1)/2)`; its measured mean must match §5's closed form.
#[test]
fn search_cost_matches_closed_form_a3() {
    let p = WmParams {
        max_subset: 3,
        min_active: None,
        ..WmParams::default()
    };
    let s = scheme(11, p);
    let enc = MultiHashEncoder;
    let values = [0.3101, 0.3123, 0.3111];
    let mut total = 0u64;
    let runs = 40u64;
    for l in 0..runs {
        let label = Label::from_parts((1 << 7) | l, 8);
        let r = enc.embed(&s, &values, 1, &label, true).expect("a=3 search");
        total += r.iterations;
    }
    let mean = total as f64 / runs as f64;
    let expect = analysis::expected_search_iterations(3, 1); // 2^6 = 64

    // Geometric mean-of-40 has std ≈ expect/sqrt(40); allow 4σ.
    let tol = 4.0 * expect / (runs as f64).sqrt();
    assert!(
        (mean - expect).abs() < tol,
        "measured {mean} vs expected {expect} (tol {tol})"
    );
}

/// Per-extreme verdicts on random data are fair coin flips — the premise
/// behind `P_fp = 2^-bias` (footnote 5).
#[test]
fn random_subset_verdicts_are_fair() {
    let p = WmParams::default();
    let s = scheme(23, p);
    let enc = MultiHashEncoder;
    let mut rng = DetRng::seed_from_u64(99);
    let mut true_verdicts = 0u32;
    let mut decided = 0u32;
    for l in 0..800u64 {
        let label = Label::from_parts((1 << 9) | l, 10);
        let base = rng.uniform(-0.45, 0.45);
        let values: Vec<f64> = (0..5).map(|_| base + rng.uniform(-0.005, 0.005)).collect();
        match enc.detect(&s, &values, &label).verdict() {
            Some(true) => {
                true_verdicts += 1;
                decided += 1;
            }
            Some(false) => decided += 1,
            None => {}
        }
    }
    assert!(
        decided > 600,
        "most random subsets should decide: {decided}"
    );
    let frac = true_verdicts as f64 / decided as f64;
    // 4σ band around 1/2 for ~700 Bernoulli trials is ±0.076.
    assert!(
        (0.42..0.58).contains(&frac),
        "true-verdict fraction {frac} is not a fair coin"
    );
}

/// Clean-data false-positive calibration. Two facts this pins down:
///
/// 1. With n verdicts free to vary, small biases occur *often* on clean
///    data (P[bias ≥ 6 | n=33, fair coin] ≈ 15 %) — the paper's footnote-5
///    `2^-bias` shorthand is optimistic at small biases, and the sound
///    measure is the binomial tail
///    ([`DetectionReport::false_positive_probability_binomial`]).
/// 2. Large clean biases must stay rare: measured over 24 independent
///    streams/keys, bias ≥ 16 (binomial tail ≤ 1e-3 at the observed
///    verdict counts) may appear at most a few times — more would mean
///    verdict correlation has broken the confidence model outright.
///
/// (Low-entropy labels — β′=2, λ=5, chosen for attack resilience — do
/// fatten the clean tail relative to iid coins because recurring
/// (label, msb) contexts correlate verdicts; see EXPERIMENTS.md.)
#[test]
fn empirical_false_positive_rate_bounded() {
    let p = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        min_active: Some(12),
        window: 512,
        ..WmParams::default()
    };
    let enc: Arc<MultiHashEncoder> = Arc::new(MultiHashEncoder);
    let runs = 24;
    let mut exceed_16 = 0;
    let mut small_bias_with_tiny_binomial_pfp = 0;
    for seed in 0..runs {
        let cfg = wms_sensors::IrtfConfig {
            readings: 3000,
            ..Default::default()
        };
        let raw = wms_sensors::generate_irtf(&cfg, 5000 + seed);
        let (stream, _) = normalize_stream(&raw).unwrap();
        let report = Detector::detect_stream(
            scheme(31 + seed, p),
            enc.clone(),
            1,
            &stream,
            TransformHint::None,
        )
        .unwrap();
        if report.bias() >= 16 {
            exceed_16 += 1;
        }
        // The binomial measure must not cry wolf on run-of-the-mill
        // clean fluctuations (bias in the single digits).
        if report.bias() > 0
            && report.bias() < 8
            && report.false_positive_probability_binomial() < 0.01
        {
            small_bias_with_tiny_binomial_pfp += 1;
        }
    }
    assert!(
        exceed_16 <= 4,
        "{exceed_16}/{runs} clean runs exceeded bias 16 — confidence model broken"
    );
    assert_eq!(
        small_bias_with_tiny_binomial_pfp, 0,
        "the binomial P_fp must not call single-digit clean biases significant"
    );
}

/// Embedding strength: on the reference data the detected bias must come
/// in near the number of embedded bits (labels and selection replay
/// perfectly on an untouched stream).
#[test]
fn clean_detection_efficiency() {
    let p = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        min_active: Some(12),
        window: 1024,
        ..WmParams::default()
    };
    let cfg = wms_sensors::IrtfConfig {
        readings: 8000,
        ..Default::default()
    };
    let raw = wms_sensors::generate_irtf(&cfg, 77);
    let (stream, _) = normalize_stream(&raw).unwrap();
    let s = scheme(41, p);
    let enc: Arc<MultiHashEncoder> = Arc::new(MultiHashEncoder);
    let (marked, stats) =
        Embedder::embed_stream(s.clone(), enc.clone(), Watermark::single(true), &stream).unwrap();
    let report = Detector::detect_stream(s, enc, 1, &marked, TransformHint::None).unwrap();
    let efficiency = report.bias() as f64 / stats.embedded as f64;
    // min_active=12 of 15 guarantees the overall convention but not the
    // m_ii singles specifically, so a fraction of carriers verdict wrong
    // even untouched (the full convention reaches ~1.0; see the multihash
    // module docs for the min_active trade-off).
    assert!(
        efficiency > 0.6,
        "bias {} / embedded {} = {efficiency:.2} — untouched streams should replay most carriers",
        report.bias(),
        stats.embedded
    );
}
