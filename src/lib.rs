//! # wms — resilient rights protection for sensor streams
//!
//! Umbrella crate of the `wms` workspace: a production-quality Rust
//! implementation of Sion, Atallah & Prabhakar, *Resilient Rights
//! Protection for Sensor Streams* (VLDB 2004), together with every
//! substrate the paper depends on.
//!
//! * [`core`] — the watermarking scheme (extremes, labels, encodings,
//!   embedder, detector, analysis);
//! * [`crypto`] — MD5 / SHA-1 / SHA-256 and the keyed hash `H(V,k)`;
//! * [`math`] — deterministic RNG, statistics, number theory;
//! * [`stream`] — single-pass bounded-window streaming model;
//! * [`sensors`] — synthetic sensor generators (incl. the IRTF-like
//!   reference dataset);
//! * [`attacks`] — Mallory's transforms (sampling, summarization,
//!   segmentation, ε-attacks, bucket counting);
//! * [`engine`] — the sharded multi-stream engine (session registry,
//!   batched ingestion, parallel shard executor).
//!
//! See `examples/quickstart.rs` for the 60-second tour and `DESIGN.md`
//! for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wms_attacks as attacks;
pub use wms_core as core;
pub use wms_crypto as crypto;
pub use wms_engine as engine;
pub use wms_math as math;
pub use wms_sensors as sensors;
pub use wms_stream as stream;

/// The most commonly used items, for glob import in applications.
pub mod prelude {
    pub use wms_attacks::{EpsilonAttack, Segmentation, Summarization, UniformSampling};
    pub use wms_core::encoding::initial::InitialEncoder;
    pub use wms_core::encoding::multihash::MultiHashEncoder;
    pub use wms_core::encoding::quadres::QuadResEncoder;
    pub use wms_core::{
        DetectionReport, Detector, Embedder, Scheme, TransformHint, Watermark, WmParams,
    };
    pub use wms_crypto::{Key, KeyedHash};
    pub use wms_engine::{Engine, EngineConfig, StreamSpec};
    pub use wms_stream::{
        normalize_stream, samples_from_values, values_of, Event, EventSource, Sample, StreamId,
        StreamSource, Transform,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let p = WmParams::default();
        p.validate().unwrap();
        let _ = Key::from_u64(1);
    }
}
