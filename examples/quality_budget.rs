//! On-the-fly quality assessment (§4.4): embed under explicit data-quality
//! constraints — per-item caps and window-statistics drift bounds — with
//! violations rolled back through the undo log, and report the final
//! impact on the stream's statistics.
//!
//! ```text
//! cargo run --release --example quality_budget
//! ```

use std::sync::Arc;
use wms::prelude::*;
use wms_core::quality::{MaxItemChange, MaxMeanDrift, MaxStdDrift};
use wms_math::summarize;
use wms_sensors::{OscillatingTemperature, TemperatureConfig};

fn main() {
    let mut sensor = OscillatingTemperature::new(TemperatureConfig::xi_100(), 5);
    let raw = sensor.take_samples(20_000);
    let (stream, normalizer) = normalize_stream(&raw).unwrap();
    let before = summarize(&values_of(&stream)).unwrap();

    let params = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        ..WmParams::default()
    };
    let scheme = Scheme::new(params, KeyedHash::md5(Key::from_u64(0x0DD))).unwrap();

    // Constraint budget: no reading may move by more than 0.02 °C
    // (in raw units — converted through the normalizer's scale), and the
    // window mean/std may drift by at most 1e-4 per embedding step.
    let max_raw_change_celsius = 0.02;
    let max_norm_change = max_raw_change_celsius * normalizer.scale();
    println!("budget: |Δitem| ≤ {max_raw_change_celsius} °C (= {max_norm_change:.2e} normalized)");

    let mut embedder = Embedder::new(
        scheme.clone(),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
    )
    .unwrap()
    .with_constraint(MaxItemChange {
        max: max_norm_change,
    })
    .with_constraint(MaxMeanDrift { max: 1e-4 })
    .with_constraint(MaxStdDrift { max: 1e-4 });

    let mut marked = Vec::with_capacity(stream.len());
    for &s in &stream {
        embedder.push_into(s, &mut marked);
    }
    embedder.finish_into(&mut marked);
    let stats = *embedder.stats();
    println!(
        "embedded {} bits; {} embeddings rolled back by constraints",
        stats.embedded, stats.skipped_quality
    );

    let after = summarize(&values_of(&marked)).unwrap();
    println!(
        "stream mean:    {:+.6} -> {:+.6}  (Δ {:.3e})",
        before.mean,
        after.mean,
        (after.mean - before.mean).abs()
    );
    println!(
        "stream std-dev:  {:.6} ->  {:.6}  (Δ {:.3e})",
        before.std_dev,
        after.std_dev,
        (after.std_dev - before.std_dev).abs()
    );
    // Verify the per-item budget was honored end-to-end.
    let worst = marked
        .iter()
        .zip(&stream)
        .map(|(a, b)| (a.value - b.value).abs())
        .fold(0.0f64, f64::max);
    println!("worst per-item change: {worst:.3e} (budget {max_norm_change:.3e})");
    assert!(worst <= max_norm_change * (1.0 + 1e-9));

    // The mark still detects.
    let report = Detector::detect_stream(
        scheme,
        Arc::new(MultiHashEncoder),
        1,
        &marked,
        TransformHint::None,
    )
    .unwrap();
    println!(
        "detected bias: {} (P_fp = {:.2e})",
        report.bias(),
        report.false_positive_probability()
    );
    assert!(report.bias() > 10);
}
