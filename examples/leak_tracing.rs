//! Leak tracing across customers: the provider licenses the same sensor
//! feed to three customers, each watermarked with a *different* key.
//! When a copy surfaces on the black market, detection with each
//! customer's key identifies the leaker — wrong keys see only noise.
//!
//! ```text
//! cargo run --release --example leak_tracing
//! ```

use std::sync::Arc;
use wms::prelude::*;
use wms_sensors::{OscillatingTemperature, TemperatureConfig};

fn customer_scheme(key: u64) -> Scheme {
    let params = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        ..WmParams::default()
    };
    Scheme::new(params, KeyedHash::md5(Key::from_u64(key))).unwrap()
}

fn main() {
    let mut sensor = OscillatingTemperature::new(TemperatureConfig::xi_100(), 11);
    let raw = sensor.take_samples(15_000);
    let (stream, _) = normalize_stream(&raw).unwrap();
    let encoder: Arc<MultiHashEncoder> = Arc::new(MultiHashEncoder);

    // Each customer receives an individually keyed copy.
    let customers = [
        ("alice", 0xA11CEu64),
        ("bob", 0xB0Bu64),
        ("carol", 0xCA201u64),
    ];
    let mut copies = Vec::new();
    for (name, key) in customers {
        let (marked, stats) = Embedder::embed_stream(
            customer_scheme(key),
            encoder.clone(),
            Watermark::single(true),
            &stream,
        )
        .unwrap();
        println!(
            "{name}: licensed copy with {} embedded bits",
            stats.embedded
        );
        copies.push((name, key, marked));
    }

    // Bob leaks a down-sampled segment of his copy.
    let (leaker, _, bobs_copy) = &copies[1];
    let leaked = UniformSampling::new(2, 99).apply(
        &Segmentation {
            start: 3000,
            len: 8000,
        }
        .apply(bobs_copy),
    );
    println!("\na {}-value copy surfaced; tracing...", leaked.len());

    // The provider tests every customer key against the leak.
    let mut best: Option<(&str, i64)> = None;
    for (name, key, _) in &copies {
        let report = Detector::detect_stream(
            customer_scheme(*key),
            encoder.clone(),
            1,
            &leaked,
            TransformHint::Known(2.0),
        )
        .unwrap();
        println!(
            "  key[{name}]: bias {:>4} (P_fp = {:.2e})",
            report.bias(),
            report.false_positive_probability()
        );
        if best.map(|(_, b)| report.bias() > b).unwrap_or(true) {
            best = Some((name, report.bias()));
        }
    }
    let (found, bias) = best.unwrap();
    println!("\nleak attributed to: {found} (bias {bias})");
    assert_eq!(found, *leaker, "attribution must point at the real leaker");
}
