//! Quickstart: watermark a temperature stream, attack it, detect the mark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use wms::prelude::*;
use wms_sensors::{OscillatingTemperature, TemperatureConfig};

fn main() {
    // 1. A sensor produces raw temperature data (°C).
    let mut sensor = OscillatingTemperature::new(TemperatureConfig::xi_100(), 42);
    let raw = sensor.take_samples(20_000);
    println!("sensor produced {} readings", raw.len());

    // 2. Normalize into the canonical (−0.5, 0.5) interval. Keep the
    //    normalizer — it maps detection results back to the raw domain
    //    and neutralizes linear-change attacks.
    let (stream, _normalizer) = normalize_stream(&raw).expect("non-degenerate data");

    // 3. Configure the scheme: secret key + parameters (β, δ, ν, θ, λ …).
    let params = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        ..WmParams::default()
    };
    let scheme = Scheme::new(params, KeyedHash::md5(Key::from_u64(0x5EC_2E7))).unwrap();
    let encoder = Arc::new(MultiHashEncoder);

    // 4. Embed a one-bit `true` watermark in a single streaming pass.
    let (marked, stats) = Embedder::embed_stream(
        scheme.clone(),
        encoder.clone(),
        Watermark::single(true),
        &stream,
    )
    .unwrap();
    println!(
        "embedded {} bits into {} major extremes (xi = {:.1} items/major)",
        stats.embedded,
        stats.majors_seen,
        stats.xi().unwrap_or(f64::NAN),
    );

    // 5. Mallory summarizes the stream down to 50% and keeps a segment.
    let attacked = Summarization::new(2).apply(&marked);
    let segment = Segmentation {
        start: 1000,
        len: 6000,
    }
    .apply(&attacked);
    println!("Mallory re-sells {} summarized values", segment.len());

    // 6. The rights holder detects the watermark in the pirated segment.
    let report = Detector::detect_stream(
        scheme,
        encoder,
        1,
        &segment,
        TransformHint::Known(2.0), // rate ratio reveals the degree
    )
    .unwrap();
    println!(
        "detected bias {} over {} verdicts — confidence {:.6} (P_fp = {:.2e})",
        report.bias(),
        report.verdicts,
        report.confidence(),
        report.false_positive_probability(),
    );
    assert!(report.bias() > 5, "the mark must survive this pipeline");
    println!("rights established.");
}
