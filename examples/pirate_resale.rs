//! The paper's core scenario (Figure 1): a licensed consumer records the
//! stream, mangles it — sampling, random alterations, cutting a segment —
//! and re-sells it. The rights holder proves ownership from the pirated
//! copy alone, using only what they legitimately keep: the secret key and
//! the embed-time calibration (normalization map + stream fingerprint).
//!
//! ```text
//! cargo run --release --example pirate_resale
//! ```

use std::sync::Arc;
use wms::prelude::*;
use wms_sensors::reference_dataset;
use wms_stream::Pipeline;

fn main() {
    // The provider watermarks the live stream before licensing it out,
    // keeping the normalizer (calibration) alongside the key.
    let raw = reference_dataset(7); // IRTF-like telescope temperatures, °C
    let (stream, calibration) = normalize_stream(&raw).unwrap();
    let params = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        ..WmParams::default()
    };
    let scheme = Scheme::new(params, KeyedHash::md5(Key::from_u64(0xB0B))).unwrap();
    let encoder = Arc::new(MultiHashEncoder);
    let (marked, stats) = Embedder::embed_stream(
        scheme.clone(),
        encoder.clone(),
        Watermark::single(true),
        &stream,
    )
    .unwrap();
    // What the customer actually receives: denormalized °C readings.
    let licensed = calibration.denormalize_samples(&marked);
    println!(
        "licensed stream: {} readings (°C), {} watermark bits embedded",
        licensed.len(),
        stats.embedded
    );

    // Mallory's pipeline: keep every 2nd value, jiggle 10% of readings by
    // up to 5%, and re-sell a 5000-reading chunk.
    let pirated = Pipeline::new()
        .then(UniformSampling::new(2, 666))
        .then(EpsilonAttack::uniform(0.10, 0.05, 666))
        .then(Segmentation {
            start: 2000,
            len: 5000,
        })
        .apply(&licensed);
    println!(
        "pirated copy: {} values, resampled and perturbed",
        pirated.len()
    );

    // The rights holder re-applies the *stored* calibration — re-fitting
    // min–max on attacked data whose global extremes were dropped would
    // skew the map and erase the bit-exact encodings.
    let pirated_normalized: Vec<Sample> = pirated
        .iter()
        .map(|s| s.with_value(calibration.normalize(s.value)))
        .collect();

    // Detect, adjusting the major-extreme degree for the 2x rate drop
    // (the rate ratio is directly observable).
    let report = Detector::detect_stream(
        scheme,
        encoder,
        1,
        &pirated_normalized,
        TransformHint::Known(2.0),
    )
    .unwrap();
    println!(
        "detection: bias {} ({} true / {} false verdicts), P_fp = {:.2e}",
        report.bias(),
        report.buckets[0].true_count,
        report.buckets[0].false_count,
        report.false_positive_probability(),
    );
    assert!(
        report.bias() >= 10,
        "ownership should be provable from the pirated copy"
    );
    println!(
        "court-time confidence: {:.6}% — infringement established.",
        report.confidence() * 100.0
    );
}
